//! Persistent store for module characterisations.
//!
//! Characterising a full-size module at `QUAC_FULL=1` density walks thousands
//! of segments × tens of thousands of bitlines, which is the expensive,
//! *one-time* step of the paper's flow (Section 6; re-run monthly per
//! Section 8). The figure and table binaries all re-characterise the same
//! modules with the same configuration, so this store serialises each
//! [`ModuleCharacterization`] to disk keyed by module identity + sweep
//! configuration, and later runs load instead of re-sweeping.
//!
//! The on-disk format is a versioned, line-oriented text file with every
//! `f64` written as its IEEE-754 bit pattern in hex, so a load round-trips
//! *exactly* — a cached characterisation is bit-identical to the freshly
//! computed one. (The vendored `serde` stand-in has no real serialisation
//! backend, so the format is hand-rolled; swapping in crates.io serde later
//! does not affect this file format.)

use crate::characterize::{
    characterize_module, pattern_sweep_with_threads, worker_threads, CharacterizationConfig,
    ModuleCharacterization, PatternStats,
};
use qt_dram_analog::{OperatingConditions, QuacAnalogModel};
use qt_dram_core::{DataPattern, Segment};
use std::fs;
use std::path::{Path, PathBuf};

/// Format marker of the store files.
const MAGIC: &str = "quac-characterization v1";

/// Format marker of the pattern-sweep store files (Figure 8's per-pattern
/// statistics).
const SWEEP_MAGIC: &str = "quac-pattern-sweep v1";

/// A directory-backed characterisation store.
#[derive(Debug, Clone)]
pub struct CharacterizationCache {
    dir: PathBuf,
}

impl CharacterizationCache {
    /// Opens (and lazily creates) a store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CharacterizationCache { dir: dir.into() }
    }

    /// The store honoured by the figure binaries: the `QUAC_CACHE_DIR`
    /// environment variable when set (`0`, `off`, or an empty value disables
    /// caching entirely), else `.quac-cache` under the working directory.
    pub fn from_env() -> Option<Self> {
        match std::env::var("QUAC_CACHE_DIR") {
            Ok(v) if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") => None,
            Ok(v) => Some(Self::new(v)),
            Err(_) => Some(Self::new(".quac-cache")),
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// [`CharacterizationCache::load_or_characterize`] through the
    /// environment-selected store ([`CharacterizationCache::from_env`]):
    /// callers honouring `QUAC_CACHE_DIR` (the figure binaries, examples,
    /// services) share this one fallback policy — a disabled store means a
    /// fresh characterisation, nothing else changes.
    pub fn load_or_characterize_env(
        label: &str,
        model: &QuacAnalogModel,
        pattern: DataPattern,
        cfg: &CharacterizationConfig,
    ) -> ModuleCharacterization {
        match Self::from_env() {
            Some(cache) => cache.load_or_characterize(label, model, pattern, cfg),
            None => characterize_module(model, pattern, cfg),
        }
    }

    /// Loads the characterisation for `(label, model, pattern, cfg)` if a
    /// valid entry exists, otherwise characterises the module (in parallel)
    /// and stores the result best-effort. `label` names the module (e.g.
    /// `"M3"`); the file key also folds in the variation seed, geometry,
    /// sweep configuration, and the model's physics fingerprint (calibration
    /// parameters + model revision), so stale entries — including ones
    /// computed by an older or differently-calibrated analog model — can
    /// never be confused for fresh ones.
    pub fn load_or_characterize(
        &self,
        label: &str,
        model: &QuacAnalogModel,
        pattern: DataPattern,
        cfg: &CharacterizationConfig,
    ) -> ModuleCharacterization {
        let path = self.entry_path(label, model, pattern, cfg);
        if let Some(ch) = load_entry(&path, pattern, cfg) {
            return ch;
        }
        let ch = characterize_module(model, pattern, cfg);
        // Best-effort persistence: a read-only filesystem must not break
        // characterisation itself.
        let _ = self.store_at(&path, &ch);
        ch
    }

    /// The file path that `load_or_characterize` uses for this key.
    pub fn entry_path(
        &self,
        label: &str,
        model: &QuacAnalogModel,
        pattern: DataPattern,
        cfg: &CharacterizationConfig,
    ) -> PathBuf {
        let sanitized: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let name = format!(
            "{sanitized}-s{:016x}-m{:016x}-r{}-g{}-p{pattern}-ss{}-bs{}-t{:016x}-a{:016x}.qch",
            model.variation().seed(),
            // Calibration + model-revision fingerprint: a physics change
            // (new AnalogParams, new entropy path) keys different entries,
            // so stale results are never served after a model edit.
            model.physics_fingerprint(),
            model.geometry().row_bits,
            model.geometry().segments_per_bank(),
            cfg.segment_stride,
            cfg.bitline_stride,
            cfg.conditions.temperature_c.to_bits(),
            cfg.conditions.age_days.to_bits(),
        );
        self.dir.join(name)
    }

    fn store_at(&self, path: &Path, ch: &ModuleCharacterization) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("pattern {}\n", ch.pattern));
        out.push_str(&format!(
            "conditions {:016x} {:016x}\n",
            ch.conditions.temperature_c.to_bits(),
            ch.conditions.age_days.to_bits()
        ));
        out.push_str(&format!("best_segment {}\n", ch.best_segment.index()));
        out.push_str(&format!("best_segment_entropy {:016x}\n", ch.best_segment_entropy.to_bits()));
        out.push_str(&format!("segments {}\n", ch.segment_entropy.len()));
        for (s, e) in &ch.segment_entropy {
            out.push_str(&format!("{s} {:016x}\n", e.to_bits()));
        }
        out.push_str(&format!("cache_blocks {}\n", ch.best_segment_cache_blocks.len()));
        for e in &ch.best_segment_cache_blocks {
            out.push_str(&format!("{:016x}\n", e.to_bits()));
        }
        out.push_str("end\n");
        // Write-then-rename so a crashed run never leaves a torn entry.
        let tmp = path.with_extension("qch.tmp");
        fs::write(&tmp, out)?;
        fs::rename(&tmp, path)
    }

    /// [`CharacterizationCache::load_or_pattern_sweep`] through the
    /// environment-selected store, with an explicit worker count for the
    /// fallback sweep — callers that already shard *modules* across workers
    /// (the Figure 8 binary) pass 1 to keep the total thread count bounded.
    pub fn load_or_pattern_sweep_env(
        label: &str,
        model: &QuacAnalogModel,
        patterns: &[DataPattern],
        cfg: &CharacterizationConfig,
        threads: usize,
    ) -> Vec<PatternStats> {
        match Self::from_env() {
            Some(cache) => cache.load_or_pattern_sweep_with(label, model, patterns, cfg, threads),
            None => pattern_sweep_with_threads(model, patterns, cfg, threads),
        }
    }

    /// Loads the Figure 8 per-pattern statistics for `(label, model,
    /// patterns, cfg)` if a valid entry exists, otherwise runs the sweep
    /// (across [`worker_threads`] workers) and stores the result
    /// best-effort. Stored values round-trip f64-exactly, so a cached sweep
    /// is bit-identical to a fresh one.
    pub fn load_or_pattern_sweep(
        &self,
        label: &str,
        model: &QuacAnalogModel,
        patterns: &[DataPattern],
        cfg: &CharacterizationConfig,
    ) -> Vec<PatternStats> {
        self.load_or_pattern_sweep_with(label, model, patterns, cfg, worker_threads())
    }

    /// [`CharacterizationCache::load_or_pattern_sweep`] with an explicit
    /// worker count for the fallback sweep.
    pub fn load_or_pattern_sweep_with(
        &self,
        label: &str,
        model: &QuacAnalogModel,
        patterns: &[DataPattern],
        cfg: &CharacterizationConfig,
        threads: usize,
    ) -> Vec<PatternStats> {
        let path = self.sweep_entry_path(label, model, patterns, cfg);
        if let Some(stats) = load_sweep_entry(&path, patterns, cfg) {
            return stats;
        }
        let stats = pattern_sweep_with_threads(model, patterns, cfg, threads);
        // Best-effort persistence, like the characterisation entries.
        let _ = self.store_sweep_at(&path, &stats, cfg);
        stats
    }

    /// The file path that `load_or_pattern_sweep` uses for this key. Keyed
    /// like [`CharacterizationCache::entry_path`] (module identity, physics
    /// fingerprint, geometry, sweep configuration, conditions) plus the
    /// pattern list, so a different pattern set can never serve a stale
    /// entry.
    pub fn sweep_entry_path(
        &self,
        label: &str,
        model: &QuacAnalogModel,
        patterns: &[DataPattern],
        cfg: &CharacterizationConfig,
    ) -> PathBuf {
        let sanitized: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let pattern_key: String = patterns.iter().map(|p| p.to_string()).collect();
        let name = format!(
            "{sanitized}-sweep-s{:016x}-m{:016x}-r{}-g{}-P{pattern_key}-ss{}-bs{}-t{:016x}-a{:016x}.qps",
            model.variation().seed(),
            model.physics_fingerprint(),
            model.geometry().row_bits,
            model.geometry().segments_per_bank(),
            cfg.segment_stride,
            cfg.bitline_stride,
            cfg.conditions.temperature_c.to_bits(),
            cfg.conditions.age_days.to_bits(),
        );
        self.dir.join(name)
    }

    fn store_sweep_at(
        &self,
        path: &Path,
        stats: &[PatternStats],
        cfg: &CharacterizationConfig,
    ) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let mut out = String::new();
        out.push_str(SWEEP_MAGIC);
        out.push('\n');
        // The key already folds the conditions in; stored redundantly so a
        // renamed file can never masquerade as another configuration.
        out.push_str(&format!(
            "conditions {:016x} {:016x}\n",
            cfg.conditions.temperature_c.to_bits(),
            cfg.conditions.age_days.to_bits()
        ));
        out.push_str(&format!("patterns {}\n", stats.len()));
        for s in stats {
            out.push_str(&format!(
                "{} {:016x} {:016x}\n",
                s.pattern,
                s.avg_cache_block_entropy.to_bits(),
                s.max_cache_block_entropy.to_bits()
            ));
        }
        out.push_str("end\n");
        let tmp = path.with_extension("qps.tmp");
        fs::write(&tmp, out)?;
        fs::rename(&tmp, path)
    }
}

/// Parses a pattern-sweep entry, returning `None` (caller re-sweeps) on any
/// mismatch, truncation, or corruption. The stored pattern list must match
/// the requested one exactly, in order.
fn load_sweep_entry(
    path: &Path,
    patterns: &[DataPattern],
    cfg: &CharacterizationConfig,
) -> Option<Vec<PatternStats>> {
    let text = fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()? != SWEEP_MAGIC {
        return None;
    }
    let mut cond_fields = lines.next()?.strip_prefix("conditions ")?.split(' ');
    let conditions = OperatingConditions {
        temperature_c: f64::from_bits(u64::from_str_radix(cond_fields.next()?, 16).ok()?),
        age_days: f64::from_bits(u64::from_str_radix(cond_fields.next()?, 16).ok()?),
    };
    if conditions != cfg.conditions {
        return None;
    }
    let count: usize = lines.next()?.strip_prefix("patterns ")?.parse().ok()?;
    if count != patterns.len() {
        return None;
    }
    let mut stats = Vec::with_capacity(count);
    for &expected in patterns {
        let mut fields = lines.next()?.split(' ');
        let pattern: DataPattern = fields.next()?.parse().ok()?;
        if pattern != expected {
            return None;
        }
        let avg = f64::from_bits(u64::from_str_radix(fields.next()?, 16).ok()?);
        let max = f64::from_bits(u64::from_str_radix(fields.next()?, 16).ok()?);
        stats.push(PatternStats {
            pattern,
            avg_cache_block_entropy: avg,
            max_cache_block_entropy: max,
        });
    }
    if lines.next()? != "end" {
        return None;
    }
    Some(stats)
}

/// Parses a store entry, returning `None` (caller recomputes) on any
/// mismatch, truncation, or corruption.
fn load_entry(
    path: &Path,
    pattern: DataPattern,
    cfg: &CharacterizationConfig,
) -> Option<ModuleCharacterization> {
    let text = fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()? != MAGIC {
        return None;
    }
    let stored_pattern: DataPattern =
        lines.next()?.strip_prefix("pattern ")?.parse().ok()?;
    if stored_pattern != pattern {
        return None;
    }
    let mut cond_fields = lines.next()?.strip_prefix("conditions ")?.split(' ');
    let conditions = OperatingConditions {
        temperature_c: f64::from_bits(u64::from_str_radix(cond_fields.next()?, 16).ok()?),
        age_days: f64::from_bits(u64::from_str_radix(cond_fields.next()?, 16).ok()?),
    };
    if conditions != cfg.conditions {
        return None;
    }
    let best_segment =
        Segment::new(lines.next()?.strip_prefix("best_segment ")?.parse().ok()?);
    let best_segment_entropy = f64::from_bits(
        u64::from_str_radix(lines.next()?.strip_prefix("best_segment_entropy ")?, 16).ok()?,
    );
    let n_segments: usize = lines.next()?.strip_prefix("segments ")?.parse().ok()?;
    let mut segment_entropy = Vec::with_capacity(n_segments);
    for _ in 0..n_segments {
        let mut fields = lines.next()?.split(' ');
        let s: usize = fields.next()?.parse().ok()?;
        let e = f64::from_bits(u64::from_str_radix(fields.next()?, 16).ok()?);
        segment_entropy.push((s, e));
    }
    let n_blocks: usize = lines.next()?.strip_prefix("cache_blocks ")?.parse().ok()?;
    let mut best_segment_cache_blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        best_segment_cache_blocks
            .push(f64::from_bits(u64::from_str_radix(lines.next()?, 16).ok()?));
    }
    if lines.next()? != "end" {
        return None;
    }
    Some(ModuleCharacterization {
        pattern,
        segment_entropy,
        best_segment,
        best_segment_entropy,
        best_segment_cache_blocks,
        conditions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize_module_serial;
    use qt_dram_analog::ModuleVariation;
    use qt_dram_core::DramGeometry;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "quac-cache-test-{tag}-{}-{unique}",
            std::process::id()
        ))
    }

    fn tiny_model(seed: u64) -> QuacAnalogModel {
        let geom = DramGeometry::tiny_test();
        QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, seed))
    }

    fn cfg() -> CharacterizationConfig {
        CharacterizationConfig {
            segment_stride: 2,
            bitline_stride: 4,
            conditions: OperatingConditions::nominal(),
        }
    }

    #[test]
    fn round_trips_exactly_and_loads_on_second_call() {
        let dir = scratch_dir("roundtrip");
        let cache = CharacterizationCache::new(&dir);
        let model = tiny_model(77);
        let pattern = DataPattern::best_average();
        let fresh = cache.load_or_characterize("Mx", &model, pattern, &cfg());
        let direct = characterize_module_serial(&model, pattern, &cfg());
        assert_eq!(fresh, direct, "first call must compute the real result");
        let path = cache.entry_path("Mx", &model, pattern, &cfg());
        assert!(path.exists(), "entry stored at {path:?}");
        // Second call loads from disk — bit-identical.
        let loaded = cache.load_or_characterize("Mx", &model, pattern, &cfg());
        assert_eq!(loaded, fresh);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_configurations_use_distinct_entries() {
        let dir = scratch_dir("keys");
        let cache = CharacterizationCache::new(&dir);
        let model = tiny_model(5);
        let pattern = DataPattern::best_average();
        let a = cache.entry_path("M1", &model, pattern, &cfg());
        let aged = cfg().with_conditions(OperatingConditions::nominal().aged(30.0));
        let b = cache.entry_path("M1", &model, pattern, &aged);
        let c = cache.entry_path("M2", &model, pattern, &cfg());
        let d = cache.entry_path("M1", &tiny_model(6), pattern, &cfg());
        assert!(a != b && a != c && a != d && b != c);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recalibrated_physics_uses_a_distinct_entry() {
        // Editing the analog calibration (or bumping the model version) must
        // change the key, so stale cached figures are never served.
        let dir = scratch_dir("physics");
        let cache = CharacterizationCache::new(&dir);
        let pattern = DataPattern::best_average();
        let base = tiny_model(5);
        let mut params = qt_dram_analog::AnalogParams::calibrated();
        params.share_voltage *= 1.01;
        let recalibrated = QuacAnalogModel::new(
            DramGeometry::tiny_test(),
            ModuleVariation::generate_with(&DramGeometry::tiny_test(), 5, params, 1.0),
        );
        assert_ne!(base.physics_fingerprint(), recalibrated.physics_fingerprint());
        assert_ne!(
            cache.entry_path("M1", &base, pattern, &cfg()),
            cache.entry_path("M1", &recalibrated, pattern, &cfg())
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_recomputed() {
        let dir = scratch_dir("corrupt");
        let cache = CharacterizationCache::new(&dir);
        let model = tiny_model(9);
        let pattern = DataPattern::best_average();
        let expected = cache.load_or_characterize("M", &model, pattern, &cfg());
        let path = cache.entry_path("M", &model, pattern, &cfg());
        fs::write(&path, "quac-characterization v1\npattern 0111\ngarbage").unwrap();
        let recovered = cache.load_or_characterize("M", &model, pattern, &cfg());
        assert_eq!(recovered, expected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pattern_sweep_round_trips_exactly_and_loads_on_second_call() {
        use crate::characterize::pattern_sweep_serial;
        let dir = scratch_dir("sweep");
        let cache = CharacterizationCache::new(&dir);
        let model = tiny_model(21);
        let patterns = DataPattern::figure8_patterns();
        let fresh = cache.load_or_pattern_sweep("Mx", &model, &patterns, &cfg());
        let direct = pattern_sweep_serial(&model, &patterns, &cfg());
        assert_eq!(fresh, direct, "first call must compute the real sweep");
        let path = cache.sweep_entry_path("Mx", &model, &patterns, &cfg());
        assert!(path.exists(), "entry stored at {path:?}");
        let loaded = cache.load_or_pattern_sweep("Mx", &model, &patterns, &cfg());
        assert_eq!(loaded, fresh, "loaded sweep must be bit-identical");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pattern_sweep_entries_reject_mismatches_and_corruption() {
        let dir = scratch_dir("sweep-corrupt");
        let cache = CharacterizationCache::new(&dir);
        let model = tiny_model(22);
        let patterns = DataPattern::figure8_patterns();
        let expected = cache.load_or_pattern_sweep("M", &model, &patterns, &cfg());
        let path = cache.sweep_entry_path("M", &model, &patterns, &cfg());
        let stored = fs::read_to_string(&path).unwrap();

        // A different pattern subset keys a different entry.
        assert_ne!(
            cache.sweep_entry_path("M", &model, &patterns[..4], &cfg()),
            path,
            "pattern list must be part of the key"
        );
        // Truncation forces a recompute (which must succeed and produce the
        // original result); sampled prefixes keep the test fast.
        for cut in (0..stored.len()).step_by(7) {
            fs::write(&path, &stored[..cut]).unwrap();
            let recovered = cache.load_or_pattern_sweep("M", &model, &patterns, &cfg());
            assert_eq!(recovered, expected, "truncated at {cut}");
            fs::write(&path, &stored).unwrap();
        }
        // A stored pattern list that does not match the request is rejected.
        let swapped = stored.replacen("0111", "1000", 1);
        fs::write(&path, swapped).unwrap();
        let recovered = cache.load_or_pattern_sweep("M", &model, &patterns, &cfg());
        assert_eq!(recovered, expected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_and_custom_env_paths() {
        // `from_env` is exercised without mutating the environment (tests run
        // in parallel): the default path is used when the variable is absent.
        if std::env::var("QUAC_CACHE_DIR").is_err() {
            let cache = CharacterizationCache::from_env().expect("default cache");
            assert_eq!(cache.dir(), Path::new(".quac-cache"));
        }
    }
}
