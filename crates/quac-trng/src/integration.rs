//! System-integration cost accounting (Section 9).

use qt_crypto::Sha256HardwareCost;
use qt_dram_core::{DramGeometry, ROWS_PER_SEGMENT};
use serde::{Deserialize, Serialize};

/// Number of banks (in distinct bank groups) QUAC-TRNG reserves rows in.
pub const RESERVED_BANKS: usize = 4;
/// Rows reserved per bank: one segment (4 rows) plus two source rows for
/// in-DRAM copy initialisation.
pub const RESERVED_ROWS_PER_BANK: usize = ROWS_PER_SEGMENT + 2;
/// Row-address registers stored by the controller: 4 segment base addresses
/// plus 8 copy-source addresses.
pub const ROW_ADDRESS_REGISTERS: usize = 12;
/// Column-address registers per temperature range (the non-overlapping
/// 256-bit-entropy cache-block ranges, Section 8).
pub const COLUMN_ADDRESS_REGISTERS: usize = 11;
/// Number of distinct temperature ranges provisioned for.
pub const TEMPERATURE_RANGES: usize = 10;
/// Width of a DRAM row address register, in bits.
pub const ROW_ADDRESS_BITS: usize = 17;
/// Width of a DRAM column address register, in bits.
pub const COLUMN_ADDRESS_BITS: usize = 10;
/// Area of the controller-side address storage reported by CACTI (mm², 7 nm).
pub const ADDRESS_STORAGE_AREA_MM2: f64 = 0.0003;
/// Reference die area of a contemporary 7 nm CPU chiplet (mm²), used for the
/// relative-overhead figure.
pub const REFERENCE_CPU_AREA_MM2: f64 = 74.0;

/// The Section 9 cost summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntegrationCosts {
    /// DRAM capacity reserved for QUAC-TRNG, in bytes.
    pub reserved_bytes: u64,
    /// Reserved capacity as a fraction of the module capacity.
    pub reserved_fraction: f64,
    /// Controller storage for row/column addresses, in bits.
    pub controller_storage_bits: usize,
    /// Total controller area (address storage + SHA-256 core), in mm².
    pub controller_area_mm2: f64,
    /// Controller area as a fraction of a contemporary CPU die.
    pub cpu_area_fraction: f64,
}

/// Computes the integration costs for a module geometry (the paper quotes an
/// 8 GB module: 192 KB reserved, 0.002 % of capacity, 1316 bits of storage,
/// 0.0014 mm², 0.04 % of the CPU die).
pub fn integration_costs(geom: &DramGeometry) -> IntegrationCosts {
    let row_bytes = geom.row_bits as u64 / 8;
    let reserved_bytes = (RESERVED_BANKS * RESERVED_ROWS_PER_BANK) as u64 * row_bytes;
    let reserved_fraction = reserved_bytes as f64 / geom.module_capacity_bytes() as f64;
    let controller_storage_bits = ROW_ADDRESS_REGISTERS * ROW_ADDRESS_BITS
        + COLUMN_ADDRESS_REGISTERS * COLUMN_ADDRESS_BITS * TEMPERATURE_RANGES;
    let sha = Sha256HardwareCost::paper_reference();
    let controller_area_mm2 = ADDRESS_STORAGE_AREA_MM2 + sha.area_mm2;
    IntegrationCosts {
        reserved_bytes,
        reserved_fraction,
        controller_storage_bits,
        controller_area_mm2,
        cpu_area_fraction: controller_area_mm2 / REFERENCE_CPU_AREA_MM2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_capacity_matches_paper() {
        let costs = integration_costs(&DramGeometry::ddr4_8gb_x8_module());
        // 4 banks × 6 rows × 8 KiB = 192 KiB.
        assert_eq!(costs.reserved_bytes, 192 * 1024);
        // ≈ 0.002 % of an 8 GB module.
        assert!((costs.reserved_fraction - 0.0000224).abs() < 0.00001, "{}", costs.reserved_fraction);
    }

    #[test]
    fn controller_storage_is_about_1300_bits() {
        let costs = integration_costs(&DramGeometry::ddr4_8gb_x8_module());
        // Paper: 1316 bits. Our register accounting gives the same order.
        assert!(costs.controller_storage_bits > 1100 && costs.controller_storage_bits < 1500,
            "storage {}", costs.controller_storage_bits);
    }

    #[test]
    fn area_overhead_is_tiny() {
        let costs = integration_costs(&DramGeometry::ddr4_8gb_x8_module());
        assert!((costs.controller_area_mm2 - 0.0013).abs() < 0.0005);
        assert!(costs.cpu_area_fraction < 0.001);
    }
}
