//! The heterogeneous entropy-backend seam: one trait every DRAM TRNG
//! mechanism in the workspace implements, so the RNG service can put
//! QUAC, D-RaNGe-style, and retention-based generators behind the same
//! shard/health/quarantine/placement machinery.
//!
//! A backend is a **seeded, deterministic** byte-stream generator: for a
//! fixed construction (module, characterisation, seed) `fill_bytes` emits
//! one fixed stream regardless of how reads slice it. That is the
//! replay-determinism contract the service's serial-equivalence tests pin,
//! and it is what makes cross-tier failover testable — a request re-placed
//! onto another backend still receives bytes from *that* backend's one
//! deterministic stream.
//!
//! Every backend also exposes the QuacTrng fault seam
//! ([`EntropyBackend::inject_fault`]): a [`FaultInjector`] corrupts
//! delivered bytes as a pure function of the absolute delivered offset, so
//! the chaos campaigns drive heterogeneous meshes with the same drift and
//! burst excursions they drive the QUAC tier with.

use crate::characterize::CharacterizationConfig;
use crate::fault::FaultInjector;
use crate::pipeline::QuacTrng;

/// Which physical mechanism a backend harvests entropy from. The service
/// uses the kind for tier-aware placement (latency-sensitive → D-RaNGe,
/// bulk → QUAC, last-resort → retention) and for per-backend metric labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Quadruple-row-activation TRNG — the paper's pipeline: high
    /// throughput, moderate latency.
    Quac,
    /// D-RaNGe-style activation-latency-failure sampling (arXiv:1808.04286):
    /// lower throughput than QUAC but the lowest per-number latency.
    DRange,
    /// Talukder-style retention-failure harvesting: very slow and bursty
    /// (each harvest waits out a refresh pause) — the last-resort tier.
    Retention,
}

impl BackendKind {
    /// Stable lowercase label used in Prometheus `backend="..."` series.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Quac => "quac",
            BackendKind::DRange => "drange",
            BackendKind::Retention => "retention",
        }
    }
}

/// The throughput/latency class a backend advertises — the numbers
/// tier-aware placement and the README's mesh table are built from
/// (per-channel figures, matching `qt_baselines::TrngComparison`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendClass {
    /// The mechanism.
    pub kind: BackendKind,
    /// Sustained per-channel throughput in Gbps.
    pub throughput_gbps: f64,
    /// Latency to produce one 256-bit number, in nanoseconds.
    pub latency_256bit_ns: f64,
}

/// A seeded, deterministic entropy source the RNG service can shard.
///
/// Implementations must uphold the stream contract: a freshly constructed
/// backend with the same inputs emits the same byte stream through
/// [`fill_bytes`](EntropyBackend::fill_bytes) no matter how calls slice it,
/// and [`recharacterize`](EntropyBackend::recharacterize) restarts the
/// stream deterministically (the service bumps the shard's epoch around it).
pub trait EntropyBackend: Send + std::fmt::Debug {
    /// Fills `out` with the next bytes of this backend's deterministic
    /// stream (applying any injected fault at the delivery boundary).
    fn fill_bytes(&mut self, out: &mut [u8]);

    /// Re-runs the mechanism's characterisation/selection step and restarts
    /// the output stream — the requalification path after a quarantine.
    /// Clears transient injected faults, like
    /// [`QuacTrng::recharacterize`].
    fn recharacterize(&mut self, cfg: &CharacterizationConfig);

    /// The backend's mechanism and advertised throughput/latency class.
    fn class(&self) -> BackendClass;

    /// Installs a fault injector at the delivery seam (replacing any
    /// previous one) — the chaos-testing hook shared by every backend.
    fn inject_fault(&mut self, fault: FaultInjector);

    /// Removes any injected fault.
    fn clear_fault(&mut self);

    /// Output bytes delivered so far through
    /// [`fill_bytes`](EntropyBackend::fill_bytes).
    fn delivered_bytes(&self) -> u64;

    /// Raw fresh entropy bits drawn from the physical mechanism so far —
    /// metastable cells sampled, before any conditioning — monotone over
    /// the backend's whole life (recharacterisation restarts the output
    /// stream but never rewinds this counter). The RNG service's per-shard
    /// entropy ledger is built on the deltas of this counter.
    fn fresh_bits_drawn(&self) -> u64;

    /// Conditioned output bytes already generated (and accounted under
    /// [`fresh_bits_drawn`](EntropyBackend::fresh_bits_drawn)) but not yet
    /// delivered — the internal buffer a partial read leaves behind. Lets
    /// the ledger attribute a draw across everything it conditions instead
    /// of over-crediting the read that triggered it.
    fn buffered_bytes(&self) -> usize;
}

impl EntropyBackend for QuacTrng {
    fn fill_bytes(&mut self, out: &mut [u8]) {
        QuacTrng::fill_bytes(self, out);
    }

    fn recharacterize(&mut self, cfg: &CharacterizationConfig) {
        QuacTrng::recharacterize(self, cfg);
    }

    fn class(&self) -> BackendClass {
        // Paper headline figures (Table 2 / Section 7): ~3.44 Gbps per
        // channel sustained, ~1.9 µs per RC+BGP iteration producing four
        // 256-bit numbers.
        BackendClass {
            kind: BackendKind::Quac,
            throughput_gbps: 3.44,
            latency_256bit_ns: 1940.0,
        }
    }

    fn inject_fault(&mut self, fault: FaultInjector) {
        QuacTrng::inject_fault(self, fault);
    }

    fn clear_fault(&mut self) {
        QuacTrng::clear_fault(self);
    }

    fn delivered_bytes(&self) -> u64 {
        QuacTrng::delivered_bytes(self)
    }

    fn fresh_bits_drawn(&self) -> u64 {
        QuacTrng::fresh_bits_drawn(self)
    }

    fn buffered_bytes(&self) -> usize {
        QuacTrng::buffered_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_are_stable_and_distinct() {
        let labels = [
            BackendKind::Quac,
            BackendKind::DRange,
            BackendKind::Retention,
        ]
        .map(BackendKind::label);
        assert_eq!(labels, ["quac", "drange", "retention"]);
    }

    #[test]
    fn quac_backend_delegates_to_the_pipeline() {
        use qt_dram_analog::PAPER_MODULES;
        let mut a = QuacTrng::for_module(&PAPER_MODULES[0], 99);
        let mut b = QuacTrng::for_module(&PAPER_MODULES[0], 99);
        let mut via_trait = vec![0u8; 128];
        EntropyBackend::fill_bytes(&mut a, &mut via_trait);
        let direct = b.generate_bytes(128);
        assert_eq!(via_trait, direct, "trait path shares the pipeline stream");
        assert_eq!(EntropyBackend::delivered_bytes(&a), 128);
        assert_eq!(a.class().kind, BackendKind::Quac);
        assert!(a.class().throughput_gbps > a.class().latency_256bit_ns / 1e6);
    }
}
