//! # quac-trng
//!
//! The paper's primary contribution: a high-throughput true random number
//! generator built on QUadruple row ACtivation (QUAC) in commodity DDR4
//! DRAM (Olgun et al., ISCA 2021).
//!
//! The crate ties the substrates together:
//!
//! * [`characterize`] — the one-time characterisation step (Section 6):
//!   data-pattern sweeps, per-segment and per-cache-block entropy maps, and
//!   selection of the highest-entropy segment and its SHA-256 input blocks,
//!   sharded across scoped worker threads.
//! * [`cache`] — a persistent, exactly-round-tripping store for
//!   characterisations, so figure binaries re-running the same module and
//!   configuration load instead of re-sweeping.
//! * [`pipeline`] — the runtime generator (Section 5.2): initialise the
//!   reserved segment with in-DRAM copies, QUAC it, read the sense
//!   amplifiers, split them into 256-bit-entropy blocks, and post-process
//!   with SHA-256 (or the Von Neumann corrector for raw streams).
//! * [`throughput`] — the analytic throughput/latency models behind
//!   Figures 11 and 13 and Table 2.
//! * [`integration`] — the system-integration cost accounting of Section 9.
//! * [`backend`] — the [`EntropyBackend`] trait that puts this pipeline and
//!   the alternative DRAM TRNG mechanisms (`qt_baselines`) behind one
//!   seeded, deterministic, fault-injectable interface for the RNG service.
//!
//! ## Quickstart
//!
//! ```
//! use quac_trng::pipeline::QuacTrng;
//! use qt_dram_analog::PAPER_MODULES;
//!
//! // Build a generator on (a simulation of) module M1 and draw random bytes.
//! let mut trng = QuacTrng::for_module(&PAPER_MODULES[0], 1234);
//! let bytes = trng.generate_bytes(64);
//! assert_eq!(bytes.len(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod characterize;
pub mod fault;
pub mod integration;
pub mod pipeline;
pub mod throughput;

pub use backend::{BackendClass, BackendKind, EntropyBackend};
pub use cache::CharacterizationCache;
pub use characterize::{CharacterizationConfig, ModuleCharacterization, PatternStats};
pub use fault::{FaultInjector, FaultMode};
pub use pipeline::QuacTrng;
pub use throughput::{ConfigurationThroughput, ThroughputModel};
