//! The runtime QUAC-TRNG pipeline (Section 5.2, Figure 6).
//!
//! After the one-time characterisation has picked a high-entropy segment and
//! its 256-bit-entropy cache-block ranges, the steady-state loop is:
//! initialise the segment from the reserved all-0/all-1 rows (in-DRAM copy),
//! QUAC it, read the high-entropy blocks from the sense amplifiers, and hash
//! each block with SHA-256 to emit 256 random bits.

use crate::characterize::{characterize_module, CharacterizationConfig, ModuleCharacterization};
use qt_crypto::{Sha256, Sha256Digest, VonNeumannCorrector};
use qt_dram_analog::{
    BitThreshold, ModuleProfile, OperatingConditions, PackedSampler, QuacAnalogModel,
};
use qt_dram_core::{BitVec, DataPattern, CACHE_BLOCK_BITS};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// A ready-to-run QUAC-TRNG instance bound to one module.
///
/// The generator models the *memory-controller view* of the mechanism: it
/// holds the chosen segment's per-bitline one-probabilities (the physics)
/// pre-quantised into a word-packed threshold sampler, draws fresh thermal
/// noise per QUAC iteration, and post-processes exactly as the hardware
/// would. The steady-state loop reuses its row buffer, block-byte buffer, and
/// digest buffer, so sustained generation performs no per-iteration heap
/// allocation.
#[derive(Debug, Clone)]
pub struct QuacTrng {
    model: QuacAnalogModel,
    characterization: ModuleCharacterization,
    probabilities: Vec<f64>,
    sampler: PackedSampler,
    block_ranges: Vec<(usize, usize)>,
    rng: StdRng,
    /// Buffered random bytes awaiting delivery (Section 9's output buffer).
    /// A deque: delivery pops from the front without shifting the tail.
    buffer: VecDeque<u8>,
    /// Reused row buffer holding the latest QUAC outcome.
    raw: BitVec,
    /// Reused packed-byte buffer for one SHA-256 input block.
    block_bytes: Vec<u8>,
    /// Reused per-iteration digest buffer for `generate_bytes`.
    digests: Vec<Sha256Digest>,
    iterations: u64,
}

impl QuacTrng {
    /// Builds a generator for one of the paper's modules, running the fast
    /// characterisation configuration.
    pub fn for_module(profile: &ModuleProfile, noise_seed: u64) -> Self {
        let model = profile.analog_model();
        Self::from_model(model, CharacterizationConfig::fast(), noise_seed)
    }

    /// Builds a generator from an explicit analog model and characterisation
    /// configuration.
    pub fn from_model(
        model: QuacAnalogModel,
        cfg: CharacterizationConfig,
        noise_seed: u64,
    ) -> Self {
        let characterization = characterize_module(&model, DataPattern::best_average(), &cfg);
        Self::with_characterization(model, characterization, noise_seed)
    }

    /// Builds a generator from an existing characterisation (e.g. one loaded
    /// from the monthly re-characterisation, Section 8).
    pub fn with_characterization(
        model: QuacAnalogModel,
        characterization: ModuleCharacterization,
        noise_seed: u64,
    ) -> Self {
        let probabilities = model.bitline_probabilities(
            characterization.best_segment,
            characterization.pattern,
            characterization.conditions,
        );
        let block_ranges = characterization.entropy_block_ranges();
        let sampler = PackedSampler::new(&probabilities);
        let raw = BitVec::zeros(probabilities.len());
        QuacTrng {
            model,
            characterization,
            probabilities,
            sampler,
            block_ranges,
            rng: StdRng::seed_from_u64(noise_seed),
            buffer: VecDeque::new(),
            raw,
            block_bytes: Vec::new(),
            digests: Vec::new(),
            iterations: 0,
        }
    }

    /// The characterisation backing this generator.
    pub fn characterization(&self) -> &ModuleCharacterization {
        &self.characterization
    }

    /// Number of QUAC iterations performed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Number of 256-bit random numbers produced per QUAC iteration.
    pub fn numbers_per_iteration(&self) -> usize {
        self.block_ranges.len().max(1)
    }

    /// Advances the generator by one QUAC operation, refreshing the reused
    /// row buffer through the word-packed sampler.
    fn advance_raw(&mut self) {
        self.iterations += 1;
        self.sampler.sample_into(&mut self.raw, &mut self.rng);
    }

    /// Performs one QUAC iteration and returns the raw sense-amplifier
    /// contents (before post-processing).
    pub fn raw_iteration(&mut self) -> BitVec {
        self.advance_raw();
        self.raw.clone()
    }

    /// Performs one QUAC iteration and post-processes each 256-bit-entropy
    /// block with SHA-256 into `out` (cleared first) — the allocation-free
    /// core of [`QuacTrng::iteration`]: packed words flow from the sampler
    /// through the byte-range extractor into the streaming hasher.
    pub fn iteration_into(&mut self, out: &mut Vec<Sha256Digest>) {
        self.advance_raw();
        out.clear();
        if self.block_ranges.is_empty() {
            // Degenerate (low-entropy) module: hash the whole row buffer.
            self.raw.extract_bytes_into(0, self.raw.len(), &mut self.block_bytes);
            out.push(Sha256::digest(&self.block_bytes));
            return;
        }
        for &(start_block, end_block) in &self.block_ranges {
            self.raw.extract_bytes_into(
                start_block * CACHE_BLOCK_BITS,
                end_block * CACHE_BLOCK_BITS,
                &mut self.block_bytes,
            );
            out.push(Sha256::digest(&self.block_bytes));
        }
    }

    /// Performs one QUAC iteration and post-processes each 256-bit-entropy
    /// block with SHA-256, returning `numbers_per_iteration()` random
    /// 256-bit numbers (Figure 6, steps 1–4).
    pub fn iteration(&mut self) -> Vec<Sha256Digest> {
        let mut out = Vec::with_capacity(self.block_ranges.len().max(1));
        self.iteration_into(&mut out);
        out
    }

    /// Generates `count` bytes of random output, buffering any excess.
    pub fn generate_bytes(&mut self, count: usize) -> Vec<u8> {
        let mut digests = std::mem::take(&mut self.digests);
        while self.buffer.len() < count {
            self.iteration_into(&mut digests);
            for digest in &digests {
                self.buffer.extend(digest.iter().copied());
            }
        }
        self.digests = digests;
        self.buffer.drain(..count).collect()
    }

    /// Generates a bitstream of `bits` random bits (SHA-256 post-processed),
    /// as used for the NIST STS experiments of Section 7.1.
    pub fn generate_bits(&mut self, bits: usize) -> BitVec {
        let bytes = self.generate_bytes(bits.div_ceil(8));
        BitVec::from_bytes(&bytes, bits)
    }

    /// Generates a Von-Neumann-corrected raw bitstream from the most
    /// metastable sense amplifier of the chosen segment (the "VNC" column of
    /// Table 1): collects `iterations` raw samples of that bitline and
    /// de-biases them.
    pub fn generate_vnc_bits(&mut self, iterations: usize) -> BitVec {
        // Pick the bitline whose one-probability is closest to 0.5.
        let best = self
            .probabilities
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - 0.5).abs().partial_cmp(&(b.1 - 0.5).abs()).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        // One quantised threshold, one RNG word per raw sample — the
        // single-bitline equivalent of the packed row sampler.
        let threshold = BitThreshold::quantize(self.probabilities[best]);
        let rng = &mut self.rng;
        let raw = BitVec::from_bits((0..iterations).map(|_| threshold.sample(rng)));
        self.iterations += iterations as u64;
        VonNeumannCorrector::correct(&raw)
    }

    /// Updates the operating conditions (e.g. a temperature change reported
    /// by the DIMM sensor) by re-deriving the per-bitline probabilities and
    /// block ranges from the stored characterisation for those conditions
    /// (Section 8's temperature-range handling).
    pub fn set_conditions(&mut self, conditions: OperatingConditions) {
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions,
        };
        // Re-profile only the reserved segment (cheap), keeping its identity.
        let blocks = self.model.geometry().cache_blocks_per_row();
        let best = self.characterization.best_segment;
        let cache_blocks: Vec<f64> = (0..blocks)
            .map(|cb| self.model.cache_block_entropy(best, cb, self.characterization.pattern, conditions))
            .collect();
        self.characterization.best_segment_cache_blocks = cache_blocks;
        self.characterization.best_segment_entropy =
            self.characterization.best_segment_cache_blocks.iter().sum();
        self.characterization.conditions = cfg.conditions;
        self.block_ranges = self.characterization.entropy_block_ranges();
        self.probabilities = self.model.bitline_probabilities(best, self.characterization.pattern, conditions);
        self.sampler = PackedSampler::new(&self.probabilities);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dram_analog::{ModuleVariation, PAPER_MODULES};
    use qt_dram_core::DramGeometry;

    fn tiny_trng() -> QuacTrng {
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        QuacTrng::from_model(model, CharacterizationConfig { segment_stride: 1, bitline_stride: 1, conditions: OperatingConditions::nominal() }, 77)
    }

    #[test]
    fn generates_requested_byte_counts() {
        let mut t = tiny_trng();
        let a = t.generate_bytes(10);
        let b = t.generate_bytes(100);
        assert_eq!(a.len(), 10);
        assert_eq!(b.len(), 100);
        assert!(t.iterations() > 0);
    }

    #[test]
    fn output_is_balanced_and_non_repeating() {
        let mut t = tiny_trng();
        let bits = t.generate_bits(40_000);
        let frac = bits.ones_fraction();
        assert!((frac - 0.5).abs() < 0.02, "ones fraction {frac}");
        // Two consecutive draws differ.
        let a = t.generate_bytes(32);
        let b = t.generate_bytes(32);
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_reproduces_the_stream() {
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        let cfg = CharacterizationConfig { segment_stride: 1, bitline_stride: 1, conditions: OperatingConditions::nominal() };
        let mut a = QuacTrng::from_model(model.clone(), cfg, 5);
        let mut b = QuacTrng::from_model(model, cfg, 5);
        assert_eq!(a.generate_bytes(64), b.generate_bytes(64));
    }

    #[test]
    fn chunked_reads_equal_one_bulk_read() {
        // The deque-backed output buffer must deliver the same stream no
        // matter how reads are sliced (and without O(n²) tail shifting).
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        let cfg = CharacterizationConfig { segment_stride: 1, bitline_stride: 1, conditions: OperatingConditions::nominal() };
        let mut chunked = QuacTrng::from_model(model.clone(), cfg, 13);
        let mut bulk = QuacTrng::from_model(model, cfg, 13);
        let mut stream = Vec::new();
        for size in [1, 7, 32, 100, 3, 257, 64] {
            stream.extend(chunked.generate_bytes(size));
        }
        assert_eq!(stream, bulk.generate_bytes(stream.len()));
    }

    #[test]
    fn packed_iteration_matches_scalar_reference_sampling() {
        // The pipeline's packed sampler must produce exactly the stream the
        // scalar reference path defines for the same seed.
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 21));
        let cfg = CharacterizationConfig { segment_stride: 1, bitline_stride: 1, conditions: OperatingConditions::nominal() };
        let mut t = QuacTrng::from_model(model.clone(), cfg, 99);
        let ch = t.characterization().clone();
        let probs = model.bitline_probabilities(ch.best_segment, ch.pattern, ch.conditions);
        let mut reference_rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..5 {
            let raw = t.raw_iteration();
            let reference =
                QuacAnalogModel::sample_from_probabilities(&probs, &mut reference_rng);
            assert_eq!(raw, reference);
        }
    }

    #[test]
    fn vnc_stream_is_unbiased() {
        let mut t = tiny_trng();
        let bits = t.generate_vnc_bits(50_000);
        assert!(!bits.is_empty());
        assert!((bits.ones_fraction() - 0.5).abs() < 0.05);
    }

    #[test]
    fn paper_module_produces_multiple_numbers_per_iteration() {
        let mut t = QuacTrng::for_module(&PAPER_MODULES[0], 3);
        // The best segment of M1 holds several SHA input blocks.
        assert!(t.numbers_per_iteration() >= 4, "blocks {}", t.numbers_per_iteration());
        let numbers = t.iteration();
        assert_eq!(numbers.len(), t.numbers_per_iteration());
    }

    #[test]
    fn temperature_update_reprofiles_the_segment() {
        let mut t = tiny_trng();
        let before = t.characterization().best_segment_entropy;
        t.set_conditions(OperatingConditions::at_temperature(85.0));
        let after = t.characterization().best_segment_entropy;
        assert!((before - after).abs() > 1e-9, "temperature change should shift entropy");
        // The generator still works.
        assert_eq!(t.generate_bytes(16).len(), 16);
    }
}
