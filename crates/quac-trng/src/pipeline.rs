//! The runtime QUAC-TRNG pipeline (Section 5.2, Figure 6).
//!
//! After the one-time characterisation has picked a high-entropy segment and
//! its 256-bit-entropy cache-block ranges, the steady-state loop is:
//! initialise the segment from the reserved all-0/all-1 rows (in-DRAM copy),
//! QUAC it, read the high-entropy blocks from the sense amplifiers, and hash
//! each block with SHA-256 to emit 256 random bits.

use crate::characterize::{characterize_module, CharacterizationConfig, ModuleCharacterization};
use qt_crypto::{Sha256, VonNeumannCorrector};
use qt_dram_analog::{ModuleProfile, OperatingConditions, QuacAnalogModel};
use qt_dram_core::{BitVec, DataPattern, CACHE_BLOCK_BITS};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A ready-to-run QUAC-TRNG instance bound to one module.
///
/// The generator models the *memory-controller view* of the mechanism: it
/// holds the chosen segment's per-bitline one-probabilities (the physics),
/// draws fresh thermal noise per QUAC iteration, and post-processes exactly
/// as the hardware would.
#[derive(Debug, Clone)]
pub struct QuacTrng {
    model: QuacAnalogModel,
    characterization: ModuleCharacterization,
    probabilities: Vec<f64>,
    block_ranges: Vec<(usize, usize)>,
    rng: StdRng,
    /// Buffered random bits awaiting delivery (Section 9's output buffer).
    buffer: Vec<u8>,
    iterations: u64,
}

impl QuacTrng {
    /// Builds a generator for one of the paper's modules, running the fast
    /// characterisation configuration.
    pub fn for_module(profile: &ModuleProfile, noise_seed: u64) -> Self {
        let model = profile.analog_model();
        Self::from_model(model, CharacterizationConfig::fast(), noise_seed)
    }

    /// Builds a generator from an explicit analog model and characterisation
    /// configuration.
    pub fn from_model(
        model: QuacAnalogModel,
        cfg: CharacterizationConfig,
        noise_seed: u64,
    ) -> Self {
        let characterization = characterize_module(&model, DataPattern::best_average(), &cfg);
        Self::with_characterization(model, characterization, noise_seed)
    }

    /// Builds a generator from an existing characterisation (e.g. one loaded
    /// from the monthly re-characterisation, Section 8).
    pub fn with_characterization(
        model: QuacAnalogModel,
        characterization: ModuleCharacterization,
        noise_seed: u64,
    ) -> Self {
        let probabilities = model.bitline_probabilities(
            characterization.best_segment,
            characterization.pattern,
            characterization.conditions,
        );
        let block_ranges = characterization.entropy_block_ranges();
        QuacTrng {
            model,
            characterization,
            probabilities,
            block_ranges,
            rng: StdRng::seed_from_u64(noise_seed),
            buffer: Vec::new(),
            iterations: 0,
        }
    }

    /// The characterisation backing this generator.
    pub fn characterization(&self) -> &ModuleCharacterization {
        &self.characterization
    }

    /// Number of QUAC iterations performed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Number of 256-bit random numbers produced per QUAC iteration.
    pub fn numbers_per_iteration(&self) -> usize {
        self.block_ranges.len().max(1)
    }

    /// Performs one QUAC iteration and returns the raw sense-amplifier
    /// contents (before post-processing).
    pub fn raw_iteration(&mut self) -> BitVec {
        self.iterations += 1;
        QuacAnalogModel::sample_from_probabilities(&self.probabilities, &mut self.rng)
    }

    /// Performs one QUAC iteration and post-processes each 256-bit-entropy
    /// block with SHA-256, returning `numbers_per_iteration()` random
    /// 256-bit numbers (Figure 6, steps 1–4).
    pub fn iteration(&mut self) -> Vec<[u8; 32]> {
        let raw = self.raw_iteration();
        let mut out = Vec::with_capacity(self.block_ranges.len());
        if self.block_ranges.is_empty() {
            // Degenerate (low-entropy) module: hash the whole row buffer.
            out.push(Sha256::digest(&raw.to_bytes()));
            return out;
        }
        for &(start_block, end_block) in &self.block_ranges {
            let bits = raw.slice(start_block * CACHE_BLOCK_BITS, end_block * CACHE_BLOCK_BITS);
            out.push(Sha256::digest(&bits.to_bytes()));
        }
        out
    }

    /// Generates `count` bytes of random output, buffering any excess.
    pub fn generate_bytes(&mut self, count: usize) -> Vec<u8> {
        while self.buffer.len() < count {
            for digest in self.iteration() {
                self.buffer.extend_from_slice(&digest);
            }
        }
        let out = self.buffer[..count].to_vec();
        self.buffer.drain(..count);
        out
    }

    /// Generates a bitstream of `bits` random bits (SHA-256 post-processed),
    /// as used for the NIST STS experiments of Section 7.1.
    pub fn generate_bits(&mut self, bits: usize) -> BitVec {
        let bytes = self.generate_bytes(bits.div_ceil(8));
        BitVec::from_bytes(&bytes, bits)
    }

    /// Generates a Von-Neumann-corrected raw bitstream from the most
    /// metastable sense amplifier of the chosen segment (the "VNC" column of
    /// Table 1): collects `iterations` raw samples of that bitline and
    /// de-biases them.
    pub fn generate_vnc_bits(&mut self, iterations: usize) -> BitVec {
        // Pick the bitline whose one-probability is closest to 0.5.
        let best = self
            .probabilities
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - 0.5).abs().partial_cmp(&(b.1 - 0.5).abs()).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let p = self.probabilities[best];
        let raw = BitVec::from_bits((0..iterations).map(|_| {
            use rand::Rng;
            self.rng.gen::<f64>() < p
        }));
        self.iterations += iterations as u64;
        VonNeumannCorrector::correct(&raw)
    }

    /// Updates the operating conditions (e.g. a temperature change reported
    /// by the DIMM sensor) by re-deriving the per-bitline probabilities and
    /// block ranges from the stored characterisation for those conditions
    /// (Section 8's temperature-range handling).
    pub fn set_conditions(&mut self, conditions: OperatingConditions) {
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions,
        };
        // Re-profile only the reserved segment (cheap), keeping its identity.
        let blocks = self.model.geometry().cache_blocks_per_row();
        let best = self.characterization.best_segment;
        let cache_blocks: Vec<f64> = (0..blocks)
            .map(|cb| self.model.cache_block_entropy(best, cb, self.characterization.pattern, conditions))
            .collect();
        self.characterization.best_segment_cache_blocks = cache_blocks;
        self.characterization.best_segment_entropy =
            self.characterization.best_segment_cache_blocks.iter().sum();
        self.characterization.conditions = cfg.conditions;
        self.block_ranges = self.characterization.entropy_block_ranges();
        self.probabilities = self.model.bitline_probabilities(best, self.characterization.pattern, conditions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dram_analog::{ModuleVariation, PAPER_MODULES};
    use qt_dram_core::DramGeometry;

    fn tiny_trng() -> QuacTrng {
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        QuacTrng::from_model(model, CharacterizationConfig { segment_stride: 1, bitline_stride: 1, conditions: OperatingConditions::nominal() }, 77)
    }

    #[test]
    fn generates_requested_byte_counts() {
        let mut t = tiny_trng();
        let a = t.generate_bytes(10);
        let b = t.generate_bytes(100);
        assert_eq!(a.len(), 10);
        assert_eq!(b.len(), 100);
        assert!(t.iterations() > 0);
    }

    #[test]
    fn output_is_balanced_and_non_repeating() {
        let mut t = tiny_trng();
        let bits = t.generate_bits(40_000);
        let frac = bits.ones_fraction();
        assert!((frac - 0.5).abs() < 0.02, "ones fraction {frac}");
        // Two consecutive draws differ.
        let a = t.generate_bytes(32);
        let b = t.generate_bytes(32);
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_reproduces_the_stream() {
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        let cfg = CharacterizationConfig { segment_stride: 1, bitline_stride: 1, conditions: OperatingConditions::nominal() };
        let mut a = QuacTrng::from_model(model.clone(), cfg, 5);
        let mut b = QuacTrng::from_model(model, cfg, 5);
        assert_eq!(a.generate_bytes(64), b.generate_bytes(64));
    }

    #[test]
    fn vnc_stream_is_unbiased() {
        let mut t = tiny_trng();
        let bits = t.generate_vnc_bits(50_000);
        assert!(!bits.is_empty());
        assert!((bits.ones_fraction() - 0.5).abs() < 0.05);
    }

    #[test]
    fn paper_module_produces_multiple_numbers_per_iteration() {
        let mut t = QuacTrng::for_module(&PAPER_MODULES[0], 3);
        // The best segment of M1 holds several SHA input blocks.
        assert!(t.numbers_per_iteration() >= 4, "blocks {}", t.numbers_per_iteration());
        let numbers = t.iteration();
        assert_eq!(numbers.len(), t.numbers_per_iteration());
    }

    #[test]
    fn temperature_update_reprofiles_the_segment() {
        let mut t = tiny_trng();
        let before = t.characterization().best_segment_entropy;
        t.set_conditions(OperatingConditions::at_temperature(85.0));
        let after = t.characterization().best_segment_entropy;
        assert!((before - after).abs() > 1e-9, "temperature change should shift entropy");
        // The generator still works.
        assert_eq!(t.generate_bytes(16).len(), 16);
    }
}
