//! The runtime QUAC-TRNG pipeline (Section 5.2, Figure 6).
//!
//! After the one-time characterisation has picked a high-entropy segment and
//! its 256-bit-entropy cache-block ranges, the steady-state loop is:
//! initialise the segment from the reserved all-0/all-1 rows (in-DRAM copy),
//! QUAC it, read the high-entropy blocks from the sense amplifiers, and hash
//! each block with SHA-256 to emit 256 random bits.

use crate::characterize::{characterize_module, CharacterizationConfig, ModuleCharacterization};
use crate::fault::FaultInjector;
use qt_crypto::{digest_many_into, Sha256, Sha256Digest, VonNeumannCorrector};
use qt_dram_analog::{
    BitSlicedSampler, BitThreshold, ModuleProfile, NoiseRng, OperatingConditions, QuacAnalogModel,
};
use qt_dram_core::{BitVec, DataPattern, CACHE_BLOCK_BITS};
use std::collections::VecDeque;

/// Upper bound on QUAC iterations whose conditioning is batched through one
/// multi-lane SHA-256 pass in [`QuacTrng::fill_bytes`]. Sixteen iterations
/// of a single-range module fill every lane of
/// [`qt_crypto::BATCH_LANES`]-wide compression exactly once.
const MAX_BATCH_ITERATIONS: usize = qt_crypto::BATCH_LANES;

/// Appends the packed bits `[start, end)` of `src` to `out`, little-endian
/// words then a masked tail — byte-for-byte the layout of
/// [`BitVec::extract_bytes_into`], but appending so one arena can hold many
/// messages.
fn append_packed_bits(src: &BitVec, start: usize, end: usize, out: &mut Vec<u8>) {
    debug_assert!(start <= end && end <= src.len());
    let n = end - start;
    for k in 0..n / 64 {
        out.extend_from_slice(&src.word_at(start + 64 * k).to_le_bytes());
    }
    let rem = n % 64;
    if rem > 0 {
        let tail = src.word_at(start + 64 * (n / 64)) & ((1u64 << rem) - 1);
        out.extend_from_slice(&tail.to_le_bytes()[..rem.div_ceil(8)]);
    }
}

/// Projects full-row cache-block bit ranges onto the sampler's compact
/// metastable-lane indices. Deterministic bitlines inside a range contribute
/// a constant to every SHA input, so dropping them preserves the digest
/// stream's entropy while shrinking the hashed bytes by ~5× on typical
/// modules.
fn lane_ranges(sampler: &BitSlicedSampler, block_ranges: &[(usize, usize)]) -> Vec<(usize, usize)> {
    block_ranges
        .iter()
        .map(|&(start_block, end_block)| {
            sampler.lane_range(start_block * CACHE_BLOCK_BITS, end_block * CACHE_BLOCK_BITS)
        })
        .collect()
}

/// A ready-to-run QUAC-TRNG instance bound to one module.
///
/// The generator models the *memory-controller view* of the mechanism: it
/// holds the chosen segment's per-bitline one-probabilities (the physics)
/// pre-quantised into a bit-sliced threshold sampler, draws fresh thermal
/// noise per QUAC iteration, and post-processes exactly as the hardware
/// would.
///
/// The steady-state hot path never touches the full row: the sampler emits a
/// *compact* row holding only the metastable bitlines (deterministic
/// bitlines contribute zero entropy and a constant prefix/suffix to every
/// SHA input, so hashing the compact projection preserves all entropy), and
/// [`QuacTrng::fill_bytes`] conditions up to [`qt_crypto::BATCH_LANES`]
/// iterations at once through the multi-lane SHA-256 of [`qt_crypto::batch`].
/// Scratch buffers are reused, so sustained generation performs no
/// per-iteration heap allocation.
#[derive(Debug, Clone)]
pub struct QuacTrng {
    model: QuacAnalogModel,
    characterization: ModuleCharacterization,
    probabilities: Vec<f64>,
    sampler: BitSlicedSampler,
    block_ranges: Vec<(usize, usize)>,
    /// `block_ranges` projected onto compact lane indices: entry `i` is the
    /// half-open metastable-lane range whose packed bytes form SHA input `i`.
    range_lanes: Vec<(usize, usize)>,
    noise: NoiseRng,
    /// Buffered random bytes awaiting delivery (Section 9's output buffer).
    /// A deque: delivery pops from the front without shifting the tail.
    buffer: VecDeque<u8>,
    /// Reused compact row holding the latest QUAC outcome's metastable bits.
    compact: BitVec,
    /// Reused full-row buffer, expanded from `compact` on demand.
    raw: BitVec,
    /// Reused packed-byte buffer for one SHA-256 input block.
    block_bytes: Vec<u8>,
    /// Reused per-iteration digest buffer for `generate_bytes`.
    digests: Vec<Sha256Digest>,
    /// Reused arena of concatenated SHA message bytes for batched filling.
    batch_bytes: Vec<u8>,
    /// Reused `(offset, end)` spans of each message inside `batch_bytes`.
    batch_spans: Vec<(usize, usize)>,
    /// Reused digest output buffer for batched filling.
    batch_digests: Vec<Sha256Digest>,
    iterations: u64,
    /// Raw fresh entropy bits sampled from the mechanism so far: one bit per
    /// metastable bitline per QUAC iteration (plus one per raw VNC sample).
    /// Monotone over the generator's life — recharacterisation restarts the
    /// output stream but never rewinds the physics already consumed.
    fresh_bits_drawn: u64,
    /// Test/fault-injection seam: corrupts delivered output bytes as a pure
    /// function of `(seed, stream offset)`. `None` in production.
    fault: Option<FaultInjector>,
    /// Output bytes delivered so far — the stream offset the fault seam
    /// corrupts against.
    delivered_bytes: u64,
}

impl QuacTrng {
    /// Builds a generator for one of the paper's modules, running the fast
    /// characterisation configuration.
    pub fn for_module(profile: &ModuleProfile, noise_seed: u64) -> Self {
        let model = profile.analog_model();
        Self::from_model(model, CharacterizationConfig::fast(), noise_seed)
    }

    /// Builds a generator from an explicit analog model and characterisation
    /// configuration.
    pub fn from_model(
        model: QuacAnalogModel,
        cfg: CharacterizationConfig,
        noise_seed: u64,
    ) -> Self {
        let characterization = characterize_module(&model, DataPattern::best_average(), &cfg);
        Self::with_characterization(model, characterization, noise_seed)
    }

    /// Builds a generator from an existing characterisation (e.g. one loaded
    /// from the monthly re-characterisation, Section 8).
    pub fn with_characterization(
        model: QuacAnalogModel,
        characterization: ModuleCharacterization,
        noise_seed: u64,
    ) -> Self {
        let probabilities = model.bitline_probabilities(
            characterization.best_segment,
            characterization.pattern,
            characterization.conditions,
        );
        let block_ranges = characterization.entropy_block_ranges();
        let sampler = BitSlicedSampler::new(&probabilities);
        let range_lanes = lane_ranges(&sampler, &block_ranges);
        let compact = BitVec::zeros(sampler.metastable_bits());
        let raw = BitVec::zeros(probabilities.len());
        QuacTrng {
            model,
            characterization,
            probabilities,
            sampler,
            block_ranges,
            range_lanes,
            noise: NoiseRng::new(noise_seed),
            buffer: VecDeque::new(),
            compact,
            raw,
            block_bytes: Vec::new(),
            digests: Vec::new(),
            batch_bytes: Vec::new(),
            batch_spans: Vec::new(),
            batch_digests: Vec::new(),
            iterations: 0,
            fresh_bits_drawn: 0,
            fault: None,
            delivered_bytes: 0,
        }
    }

    /// Builds `count` independent per-channel generator shards that share one
    /// characterisation (the paper's controller characterises a module once
    /// and then drives every channel from the stored result, Section 8).
    ///
    /// Shard `i` draws its thermal noise from [`shard_seed`]`(base_seed, i)`,
    /// so the set of per-shard streams is a pure function of `base_seed`:
    /// a multi-threaded service built on these shards is reproducible against
    /// single-threaded per-shard reference runs. Every shard owns its state
    /// (`QuacTrng` is `Send`), so each can move onto its own worker thread.
    pub fn shards(
        model: &QuacAnalogModel,
        characterization: &ModuleCharacterization,
        base_seed: u64,
        count: usize,
    ) -> Vec<QuacTrng> {
        (0..count)
            .map(|i| {
                Self::with_characterization(
                    model.clone(),
                    characterization.clone(),
                    shard_seed(base_seed, i),
                )
            })
            .collect()
    }

    /// The characterisation backing this generator.
    pub fn characterization(&self) -> &ModuleCharacterization {
        &self.characterization
    }

    /// Number of QUAC iterations performed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Number of 256-bit random numbers produced per QUAC iteration.
    pub fn numbers_per_iteration(&self) -> usize {
        self.block_ranges.len().max(1)
    }

    /// Advances the generator by one QUAC operation, refreshing the reused
    /// compact row through the bit-sliced sampler. Deterministic bitlines
    /// never consume noise and are reconstructed only when a caller asks for
    /// the full row.
    fn advance_compact(&mut self) {
        self.iterations += 1;
        // Every metastable bitline resolves once per QUAC operation: that
        // compact row *is* the fresh entropy this iteration harvests.
        self.fresh_bits_drawn += self.compact.len() as u64;
        self.sampler
            .sample_compact_into(&mut self.compact, &mut self.noise);
    }

    /// Performs one QUAC iteration and returns the raw sense-amplifier
    /// contents (before post-processing), expanding the compact outcome back
    /// onto the full row.
    pub fn raw_iteration(&mut self) -> BitVec {
        self.advance_compact();
        self.sampler
            .expand_compact_into(&self.compact, &mut self.raw);
        self.raw.clone()
    }

    /// Performs one QUAC iteration and post-processes each 256-bit-entropy
    /// block with SHA-256 into `out` (cleared first) — the allocation-free
    /// core of [`QuacTrng::iteration`]: compact packed words flow from the
    /// sampler through the byte extractor into the streaming hasher. The
    /// digest stream is byte-identical to the batched multi-lane path of
    /// [`QuacTrng::fill_bytes`].
    pub fn iteration_into(&mut self, out: &mut Vec<Sha256Digest>) {
        self.advance_compact();
        out.clear();
        if self.range_lanes.is_empty() {
            // Degenerate (low-entropy) module: hash the whole compact row.
            self.compact
                .extract_bytes_into(0, self.compact.len(), &mut self.block_bytes);
            out.push(Sha256::digest(&self.block_bytes));
            return;
        }
        for &(start_lane, end_lane) in &self.range_lanes {
            self.compact
                .extract_bytes_into(start_lane, end_lane, &mut self.block_bytes);
            out.push(Sha256::digest(&self.block_bytes));
        }
    }

    /// Performs one QUAC iteration and post-processes each 256-bit-entropy
    /// block with SHA-256, returning `numbers_per_iteration()` random
    /// 256-bit numbers (Figure 6, steps 1–4).
    pub fn iteration(&mut self) -> Vec<Sha256Digest> {
        let mut out = Vec::with_capacity(self.block_ranges.len().max(1));
        self.iteration_into(&mut out);
        out
    }

    /// Generates `count` bytes of random output, buffering any excess.
    pub fn generate_bytes(&mut self, count: usize) -> Vec<u8> {
        let mut out = vec![0u8; count];
        self.fill_bytes(&mut out);
        out
    }

    /// Fills `out` with random bytes, drawing from the output buffer first
    /// and running QUAC iterations for the remainder — the allocation-free
    /// equivalent of [`QuacTrng::generate_bytes`] for callers that reuse one
    /// delivery buffer (e.g. the sharded RNG service). The emitted stream is
    /// identical no matter how reads are sliced across the two entry points.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        self.fill_bytes_clean(out);
        if let Some(fault) = self.fault {
            fault.corrupt(self.delivered_bytes, out);
        }
        self.delivered_bytes += out.len() as u64;
    }

    /// The uncorrupted core of [`QuacTrng::fill_bytes`] (the fault seam
    /// wraps this at the delivery boundary, so the internal output buffer
    /// always holds clean stream bytes).
    fn fill_bytes_clean(&mut self, out: &mut [u8]) {
        let mut filled = 0;
        loop {
            filled = self.drain_buffer_into(out, filled);
            if filled == out.len() {
                break;
            }
            // Batch enough iterations to cover the remaining deficit (capped
            // so scratch stays small and short reads stay cheap).
            let per_iter = (qt_crypto::DIGEST_BITS / 8) * self.numbers_per_iteration();
            let deficit = out.len() - filled;
            let batch = deficit.div_ceil(per_iter).clamp(1, MAX_BATCH_ITERATIONS);
            self.run_batched_iterations(batch);
            // Deliver the fresh digests straight into `out` — only the final
            // partial digest detours through the deque. Byte order is
            // identical to pushing everything through the buffer (the
            // reference twin's path), just without ~2 deque ops per byte.
            let digests = std::mem::take(&mut self.batch_digests);
            for digest in &digests {
                let take = (out.len() - filled).min(digest.len());
                out[filled..filled + take].copy_from_slice(&digest[..take]);
                filled += take;
                if take < digest.len() {
                    self.buffer.extend(digest[take..].iter().copied());
                }
            }
            self.batch_digests = digests;
        }
    }

    /// Copies buffered bytes into `out[filled..]` as (at most) two slice
    /// memcpys — the deque's two halves — rather than byte-by-byte, and
    /// returns the new fill level.
    fn drain_buffer_into(&mut self, out: &mut [u8], filled: usize) -> usize {
        let take = self.buffer.len().min(out.len() - filled);
        if take == 0 {
            return filled;
        }
        let (front, back) = self.buffer.as_slices();
        let from_front = take.min(front.len());
        out[filled..filled + from_front].copy_from_slice(&front[..from_front]);
        if take > from_front {
            out[filled + from_front..filled + take].copy_from_slice(&back[..take - from_front]);
        }
        self.buffer.drain(..take);
        filled + take
    }

    /// Runs `iterations` QUAC iterations and conditions every block of every
    /// iteration through one multi-lane SHA-256 pass, leaving the digests in
    /// `self.batch_digests`. Digests land iteration-major, block-minor —
    /// exactly the order the scalar per-iteration path emits them, and
    /// [`qt_crypto::digest_many_into`] is pinned digest-identical to
    /// [`Sha256::digest`], so batching is invisible in the output stream.
    fn run_batched_iterations(&mut self, iterations: usize) {
        let mut arena = std::mem::take(&mut self.batch_bytes);
        let mut spans = std::mem::take(&mut self.batch_spans);
        let mut digests = std::mem::take(&mut self.batch_digests);
        arena.clear();
        spans.clear();
        digests.clear();
        for _ in 0..iterations {
            self.advance_compact();
            if self.range_lanes.is_empty() {
                let start = arena.len();
                append_packed_bits(&self.compact, 0, self.compact.len(), &mut arena);
                spans.push((start, arena.len()));
            } else {
                for &(start_lane, end_lane) in &self.range_lanes {
                    let start = arena.len();
                    append_packed_bits(&self.compact, start_lane, end_lane, &mut arena);
                    spans.push((start, arena.len()));
                }
            }
        }
        let messages: Vec<&[u8]> = spans.iter().map(|&(s, e)| &arena[s..e]).collect();
        digest_many_into(&messages, &mut digests);
        self.batch_bytes = arena;
        self.batch_spans = spans;
        self.batch_digests = digests;
    }

    /// Frozen reference twin of [`QuacTrng::fill_bytes`]: one scalar
    /// iteration at a time through [`QuacTrng::iteration_into`] and the
    /// streaming [`Sha256`], with identical buffering, fault, and
    /// stream-offset semantics. The equivalence tests pin the batched hot
    /// path byte-identical to this twin across arbitrary read slicings; it
    /// is not intended for production use.
    pub fn fill_bytes_reference(&mut self, out: &mut [u8]) {
        let mut digests = std::mem::take(&mut self.digests);
        let mut filled = 0;
        loop {
            filled = self.drain_buffer_into(out, filled);
            if filled == out.len() {
                break;
            }
            self.iteration_into(&mut digests);
            for digest in &digests {
                self.buffer.extend(digest.iter().copied());
            }
        }
        self.digests = digests;
        if let Some(fault) = self.fault {
            fault.corrupt(self.delivered_bytes, out);
        }
        self.delivered_bytes += out.len() as u64;
    }

    /// Number of random bytes already generated and awaiting delivery in the
    /// output buffer (Section 9's controller-side buffer).
    pub fn buffered_bytes(&self) -> usize {
        self.buffer.len()
    }

    /// Generates a bitstream of `bits` random bits (SHA-256 post-processed),
    /// as used for the NIST STS experiments of Section 7.1.
    pub fn generate_bits(&mut self, bits: usize) -> BitVec {
        let bytes = self.generate_bytes(bits.div_ceil(8));
        BitVec::from_bytes(&bytes, bits)
    }

    /// Generates a Von-Neumann-corrected raw bitstream from the most
    /// metastable sense amplifier of the chosen segment (the "VNC" column of
    /// Table 1): collects `iterations` raw samples of that bitline and
    /// de-biases them.
    pub fn generate_vnc_bits(&mut self, iterations: usize) -> BitVec {
        // Pick the bitline whose one-probability is closest to 0.5.
        let best = self
            .probabilities
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - 0.5).abs().partial_cmp(&(b.1 - 0.5).abs()).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        // One quantised threshold, one RNG word per raw sample — the
        // single-bitline equivalent of the packed row sampler.
        let threshold = BitThreshold::quantize(self.probabilities[best]);
        let rng = &mut self.noise;
        let raw = BitVec::from_bits((0..iterations).map(|_| threshold.sample(rng)));
        self.iterations += iterations as u64;
        self.fresh_bits_drawn += iterations as u64;
        VonNeumannCorrector::correct(&raw)
    }

    /// Updates the operating conditions (e.g. a temperature change reported
    /// by the DIMM sensor) by re-deriving the per-bitline probabilities and
    /// block ranges from the stored characterisation for those conditions
    /// (Section 8's temperature-range handling).
    pub fn set_conditions(&mut self, conditions: OperatingConditions) {
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions,
        };
        // Re-profile only the reserved segment (cheap), keeping its identity.
        let blocks = self.model.geometry().cache_blocks_per_row();
        let best = self.characterization.best_segment;
        let cache_blocks: Vec<f64> = (0..blocks)
            .map(|cb| {
                self.model
                    .cache_block_entropy(best, cb, self.characterization.pattern, conditions)
            })
            .collect();
        self.characterization.best_segment_cache_blocks = cache_blocks;
        self.characterization.best_segment_entropy =
            self.characterization.best_segment_cache_blocks.iter().sum();
        self.characterization.conditions = cfg.conditions;
        self.block_ranges = self.characterization.entropy_block_ranges();
        self.probabilities =
            self.model
                .bitline_probabilities(best, self.characterization.pattern, conditions);
        self.sampler = BitSlicedSampler::new(&self.probabilities);
        self.range_lanes = lane_ranges(&self.sampler, &self.block_ranges);
        self.compact = BitVec::zeros(self.sampler.metastable_bits());
    }

    /// Attaches a [`FaultInjector`] to the delivery path — the test seam
    /// continuous-validation tests use to make this generator's *served*
    /// bytes statistically detectable as faulty, without touching the
    /// sampling pipeline. See [`crate::fault`] for why the corruption
    /// applies post-SHA (raw-side faults are whitened away).
    pub fn inject_fault(&mut self, fault: FaultInjector) {
        self.fault = Some(fault);
    }

    /// Removes any injected fault.
    pub fn clear_fault(&mut self) {
        self.fault = None;
    }

    /// The currently injected fault, if any.
    pub fn fault(&self) -> Option<&FaultInjector> {
        self.fault.as_ref()
    }

    /// Output bytes delivered so far through [`QuacTrng::fill_bytes`] /
    /// [`QuacTrng::generate_bytes`] — the stream offset the fault seam
    /// corrupts against.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Raw fresh entropy bits sampled from the mechanism over this
    /// generator's whole life — one bit per metastable bitline per QUAC
    /// iteration, plus one per raw VNC sample — regardless of whether the
    /// iteration's output was served, buffered, or (after a
    /// recharacterisation) discarded. Monotone: the RNG service's entropy
    /// ledger takes deltas of this counter.
    pub fn fresh_bits_drawn(&self) -> u64 {
        self.fresh_bits_drawn
    }

    /// Re-runs the full characterisation on the stored analog model and
    /// rebuilds the runtime state from the fresh result — the controller's
    /// response to a shard failing in-service validation (Section 8's
    /// periodic re-characterisation, triggered on demand). Buffered output
    /// from the old configuration is discarded (a requalifying shard must
    /// not serve stale bytes), and a fault marked
    /// [`transient`](FaultInjector::transient) is cleared — modelling
    /// damage the re-selected segment routes around.
    ///
    /// Returns the fresh characterisation.
    pub fn recharacterize(&mut self, cfg: &CharacterizationConfig) -> &ModuleCharacterization {
        let pattern = self.characterization.pattern;
        self.characterization = characterize_module(&self.model, pattern, cfg);
        self.probabilities = self.model.bitline_probabilities(
            self.characterization.best_segment,
            self.characterization.pattern,
            self.characterization.conditions,
        );
        self.block_ranges = self.characterization.entropy_block_ranges();
        self.sampler = BitSlicedSampler::new(&self.probabilities);
        self.range_lanes = lane_ranges(&self.sampler, &self.block_ranges);
        self.compact = BitVec::zeros(self.sampler.metastable_bits());
        self.raw = BitVec::zeros(self.probabilities.len());
        self.buffer.clear();
        if self.fault.is_some_and(|f| f.cleared_on_recharacterize) {
            self.fault = None;
        }
        &self.characterization
    }
}

/// The per-shard noise seed used by [`QuacTrng::shards`]: a SplitMix64-style
/// finalizer over `(base_seed, shard)`, so shard streams are decorrelated
/// even for adjacent base seeds yet fully determined by them.
pub fn shard_seed(base_seed: u64, shard: usize) -> u64 {
    let mut z = base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dram_analog::{ModuleVariation, PAPER_MODULES};
    use qt_dram_core::DramGeometry;

    fn tiny_trng() -> QuacTrng {
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        QuacTrng::from_model(
            model,
            CharacterizationConfig {
                segment_stride: 1,
                bitline_stride: 1,
                conditions: OperatingConditions::nominal(),
            },
            77,
        )
    }

    #[test]
    fn generates_requested_byte_counts() {
        let mut t = tiny_trng();
        let a = t.generate_bytes(10);
        let b = t.generate_bytes(100);
        assert_eq!(a.len(), 10);
        assert_eq!(b.len(), 100);
        assert!(t.iterations() > 0);
    }

    #[test]
    fn output_is_balanced_and_non_repeating() {
        let mut t = tiny_trng();
        let bits = t.generate_bits(40_000);
        let frac = bits.ones_fraction();
        assert!((frac - 0.5).abs() < 0.02, "ones fraction {frac}");
        // Two consecutive draws differ.
        let a = t.generate_bytes(32);
        let b = t.generate_bytes(32);
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_reproduces_the_stream() {
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions: OperatingConditions::nominal(),
        };
        let mut a = QuacTrng::from_model(model.clone(), cfg, 5);
        let mut b = QuacTrng::from_model(model, cfg, 5);
        assert_eq!(a.generate_bytes(64), b.generate_bytes(64));
    }

    #[test]
    fn chunked_reads_equal_one_bulk_read() {
        // The deque-backed output buffer must deliver the same stream no
        // matter how reads are sliced (and without O(n²) tail shifting).
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions: OperatingConditions::nominal(),
        };
        let mut chunked = QuacTrng::from_model(model.clone(), cfg, 13);
        let mut bulk = QuacTrng::from_model(model, cfg, 13);
        let mut stream = Vec::new();
        for size in [1, 7, 32, 100, 3, 257, 64] {
            stream.extend(chunked.generate_bytes(size));
        }
        assert_eq!(stream, bulk.generate_bytes(stream.len()));
    }

    #[test]
    fn bitsliced_iteration_matches_scalar_reference_sampling() {
        // The pipeline's bit-sliced sampler must produce exactly the stream
        // the scalar reference path defines for the same seed.
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 21));
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions: OperatingConditions::nominal(),
        };
        let mut t = QuacTrng::from_model(model.clone(), cfg, 99);
        let ch = t.characterization().clone();
        let probs = model.bitline_probabilities(ch.best_segment, ch.pattern, ch.conditions);
        let mut reference_rng = NoiseRng::new(99);
        for _ in 0..5 {
            let raw = t.raw_iteration();
            let reference =
                QuacAnalogModel::sample_from_probabilities_bitsliced(&probs, &mut reference_rng);
            assert_eq!(raw, reference);
        }
    }

    #[test]
    fn batched_fill_matches_scalar_reference_fill_across_slicings() {
        // The batched multi-lane fill path must be byte-identical to the
        // frozen one-iteration-at-a-time scalar twin, no matter how reads
        // are sliced (slicings chosen to hit batch sizes 1, the cap, and
        // partial-digest carries).
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions: OperatingConditions::nominal(),
        };
        let mut fast = QuacTrng::from_model(model.clone(), cfg, 77);
        let mut reference = QuacTrng::from_model(model, cfg, 77);
        for size in [1usize, 31, 32, 33, 512, 4096, 5, 1000, 64] {
            let mut a = vec![0u8; size];
            let mut b = vec![0u8; size];
            fast.fill_bytes(&mut a);
            reference.fill_bytes_reference(&mut b);
            assert_eq!(a, b, "diverged at read of {size} bytes");
        }
        assert_eq!(fast.delivered_bytes(), reference.delivered_bytes());
    }

    #[test]
    fn batched_fill_matches_reference_under_fault_injection() {
        use crate::fault::FaultInjector;
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions: OperatingConditions::nominal(),
        };
        let mut fast = QuacTrng::from_model(model.clone(), cfg, 3);
        let mut reference = QuacTrng::from_model(model, cfg, 3);
        let fault = FaultInjector::burst(50, 17);
        fast.inject_fault(fault);
        reference.inject_fault(fault);
        for size in [200usize, 3, 999, 128] {
            let mut a = vec![0u8; size];
            let mut b = vec![0u8; size];
            fast.fill_bytes(&mut a);
            reference.fill_bytes_reference(&mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn transient_fault_survives_exactly_one_recharacterization() {
        // Back-to-back recharacterisations must be idempotent on the fault
        // seam: the first clears a transient fault, the second finds nothing
        // to clear and must not disturb a freshly injected persistent one.
        use crate::fault::FaultInjector;
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions: OperatingConditions::nominal(),
        };
        let mut trng = QuacTrng::from_model(model, cfg, 9);
        trng.inject_fault(FaultInjector::stuck_at(0, true).transient());
        assert!(trng.fault().is_some());
        trng.recharacterize(&cfg);
        assert!(
            trng.fault().is_none(),
            "first recharacterisation clears a transient fault"
        );
        trng.recharacterize(&cfg);
        assert!(trng.fault().is_none(), "second pass stays clear");
        // A persistent fault survives any number of recharacterisations.
        trng.inject_fault(FaultInjector::stuck_at(1, false));
        trng.recharacterize(&cfg);
        trng.recharacterize(&cfg);
        assert_eq!(
            trng.fault().map(|f| f.cleared_on_recharacterize),
            Some(false)
        );
        // And the healthy stream really is clean: recharacterisation after
        // clearing leaves no residual corruption.
        trng.clear_fault();
        let mut buf = vec![0u8; 512];
        trng.fill_bytes(&mut buf);
        assert!(
            buf.iter().any(|&b| b & 0b10 != 0),
            "bit 1 is no longer stuck low"
        );
    }

    #[test]
    fn paper_module_batched_fill_matches_reference() {
        // Multi-range module (several SHA blocks per iteration): the
        // iteration-major, block-minor digest order must survive batching.
        let mut fast = QuacTrng::for_module(&PAPER_MODULES[0], 11);
        let mut reference = QuacTrng::for_module(&PAPER_MODULES[0], 11);
        for size in [100usize, 4096, 1, 700] {
            let mut a = vec![0u8; size];
            let mut b = vec![0u8; size];
            fast.fill_bytes(&mut a);
            reference.fill_bytes_reference(&mut b);
            assert_eq!(a, b, "diverged at read of {size} bytes");
        }
    }

    #[test]
    fn fill_bytes_and_generate_bytes_share_one_stream() {
        // Interleaving the slice-filling and Vec-returning entry points must
        // walk the same underlying stream as one bulk read.
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions: OperatingConditions::nominal(),
        };
        let mut mixed = QuacTrng::from_model(model.clone(), cfg, 42);
        let mut bulk = QuacTrng::from_model(model, cfg, 42);
        let mut stream = Vec::new();
        for (i, size) in [3usize, 64, 1, 200, 31, 128].into_iter().enumerate() {
            if i % 2 == 0 {
                let mut buf = vec![0u8; size];
                mixed.fill_bytes(&mut buf);
                stream.extend(buf);
            } else {
                stream.extend(mixed.generate_bytes(size));
            }
        }
        assert_eq!(stream, bulk.generate_bytes(stream.len()));
    }

    #[test]
    fn fill_bytes_empty_slice_is_a_no_op() {
        let mut t = tiny_trng();
        let before = t.iterations();
        t.fill_bytes(&mut []);
        assert_eq!(t.iterations(), before);
        assert_eq!(t.buffered_bytes(), 0);
    }

    #[test]
    fn shards_are_independent_deterministic_and_sendable() {
        fn assert_send<T: Send>(_: &T) {}
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions: OperatingConditions::nominal(),
        };
        let ch = characterize_module(&model, DataPattern::best_average(), &cfg);
        let mut shards = QuacTrng::shards(&model, &ch, 7, 3);
        assert_send(&shards[0]);
        assert_eq!(shards.len(), 3);
        // Distinct shards emit distinct streams; the same (base_seed, index)
        // always reproduces the same stream.
        let streams: Vec<Vec<u8>> = shards.iter_mut().map(|s| s.generate_bytes(64)).collect();
        assert_ne!(streams[0], streams[1]);
        assert_ne!(streams[1], streams[2]);
        let mut again = QuacTrng::shards(&model, &ch, 7, 3);
        for (shard, stream) in again.iter_mut().zip(&streams) {
            assert_eq!(&shard.generate_bytes(64), stream);
        }
        // A shard equals a directly-seeded generator with the derived seed.
        let mut direct =
            QuacTrng::with_characterization(model.clone(), ch.clone(), shard_seed(7, 1));
        let mut shard1 = QuacTrng::shards(&model, &ch, 7, 2).pop().unwrap();
        assert_eq!(direct.generate_bytes(96), shard1.generate_bytes(96));
    }

    #[test]
    fn shard_seeds_do_not_collide_across_nearby_bases() {
        let mut seen = std::collections::HashSet::new();
        for base in 0..64u64 {
            for shard in 0..16usize {
                assert!(
                    seen.insert(shard_seed(base, shard)),
                    "collision at ({base}, {shard})"
                );
            }
        }
    }

    #[test]
    fn vnc_stream_is_unbiased() {
        let mut t = tiny_trng();
        let bits = t.generate_vnc_bits(50_000);
        assert!(!bits.is_empty());
        assert!((bits.ones_fraction() - 0.5).abs() < 0.05);
    }

    #[test]
    fn paper_module_produces_multiple_numbers_per_iteration() {
        let mut t = QuacTrng::for_module(&PAPER_MODULES[0], 3);
        // The best segment of M1 holds several SHA input blocks.
        assert!(
            t.numbers_per_iteration() >= 4,
            "blocks {}",
            t.numbers_per_iteration()
        );
        let numbers = t.iteration();
        assert_eq!(numbers.len(), t.numbers_per_iteration());
    }

    #[test]
    fn injected_fault_corrupts_delivery_but_not_the_underlying_stream() {
        use crate::fault::FaultInjector;
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions: OperatingConditions::nominal(),
        };
        let mut clean = QuacTrng::from_model(model.clone(), cfg, 5);
        let mut faulty = QuacTrng::from_model(model, cfg, 5);
        faulty.inject_fault(FaultInjector::bias(0.85, 99));
        let reference = clean.generate_bytes(8192);
        let corrupted = faulty.generate_bytes(8192);
        assert_ne!(reference, corrupted);
        // Corruption is an OR mask over the same underlying stream.
        for (c, d) in reference.iter().zip(&corrupted) {
            assert_eq!(c | d, *d);
        }
        let ones: u32 = corrupted.iter().map(|b| b.count_ones()).sum();
        let frac = ones as f64 / (corrupted.len() * 8) as f64;
        assert!((frac - 0.85).abs() < 0.02, "biased delivery, got {frac}");
        assert_eq!(faulty.delivered_bytes(), 8192);
    }

    #[test]
    fn fault_corruption_is_invariant_to_read_slicing() {
        use crate::fault::FaultInjector;
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions: OperatingConditions::nominal(),
        };
        let mut chunked = QuacTrng::from_model(model.clone(), cfg, 31);
        let mut bulk = QuacTrng::from_model(model, cfg, 31);
        let fault = FaultInjector::burst(100, 30);
        chunked.inject_fault(fault);
        bulk.inject_fault(fault);
        let mut stream = Vec::new();
        for size in [3usize, 64, 1, 200, 31, 500] {
            stream.extend(chunked.generate_bytes(size));
        }
        assert_eq!(stream, bulk.generate_bytes(stream.len()));
    }

    #[test]
    fn recharacterize_refreshes_state_and_clears_transient_faults() {
        use crate::fault::FaultInjector;
        let mut t = tiny_trng();
        t.inject_fault(FaultInjector::bias(0.9, 1).transient());
        let _ = t.generate_bytes(512);
        assert!(t.fault().is_some());
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions: OperatingConditions::nominal(),
        };
        let before = t.characterization().clone();
        let fresh = t.recharacterize(&cfg).clone();
        // Same model, same config: the fresh characterisation agrees with
        // the original (recharacterisation is a pure function of the model).
        assert_eq!(fresh.best_segment, before.best_segment);
        assert!(
            t.fault().is_none(),
            "transient fault cleared by recharacterisation"
        );
        assert_eq!(t.buffered_bytes(), 0, "stale buffered output discarded");
        assert_eq!(t.generate_bytes(64).len(), 64);
        // A persistent fault survives recharacterisation.
        t.inject_fault(FaultInjector::stuck_at(0, true));
        t.recharacterize(&cfg);
        assert!(t.fault().is_some(), "persistent fault survives");
    }

    #[test]
    fn temperature_update_reprofiles_the_segment() {
        let mut t = tiny_trng();
        let before = t.characterization().best_segment_entropy;
        t.set_conditions(OperatingConditions::at_temperature(85.0));
        let after = t.characterization().best_segment_entropy;
        assert!(
            (before - after).abs() > 1e-9,
            "temperature change should shift entropy"
        );
        // The generator still works.
        assert_eq!(t.generate_bytes(16).len(), 16);
    }
}
