//! One-time characterisation of a DRAM module for QUAC-TRNG (Section 6).
//!
//! Characterisation answers three questions: which data pattern maximises
//! entropy (Figure 8), which segments are high-entropy (Figure 9, Table 3),
//! and how that entropy is distributed over the cache blocks of the chosen
//! segment (Figure 10) so the controller can carve the row buffer into
//! SHA-256 input blocks that each carry 256 bits of Shannon entropy.

use qt_dram_analog::{OperatingConditions, QuacAnalogModel};
use qt_dram_core::{DataPattern, Segment, CACHE_BLOCK_BITS, RANDOM_NUMBER_BITS};
use serde::{Deserialize, Serialize};

/// Sampling configuration for characterisation sweeps. Full-resolution
/// characterisation of a real-size module is expensive (8192 segments ×
/// 65 536 bitlines), so sweeps can sample segments and stride bitlines; the
/// defaults keep the reproduction harness fast while remaining statistically
/// faithful.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationConfig {
    /// Evaluate every n-th segment (1 = all segments).
    pub segment_stride: usize,
    /// Evaluate every n-th bitline within a segment (1 = all bitlines).
    pub bitline_stride: usize,
    /// Operating conditions of the characterisation run.
    pub conditions: OperatingConditions,
}

impl CharacterizationConfig {
    /// Full-resolution characterisation at nominal conditions.
    pub fn exact() -> Self {
        CharacterizationConfig { segment_stride: 1, bitline_stride: 1, conditions: OperatingConditions::nominal() }
    }

    /// A fast configuration for tests and example programs.
    pub fn fast() -> Self {
        CharacterizationConfig { segment_stride: 64, bitline_stride: 16, conditions: OperatingConditions::nominal() }
    }

    /// Returns a copy with different operating conditions.
    pub fn with_conditions(mut self, conditions: OperatingConditions) -> Self {
        self.conditions = conditions;
        self
    }
}

impl Default for CharacterizationConfig {
    fn default() -> Self {
        Self::fast()
    }
}

/// Per-pattern entropy statistics over a module (Figure 8's metrics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternStats {
    /// The data pattern.
    pub pattern: DataPattern,
    /// Average cache-block entropy across all evaluated cache blocks, bits.
    pub avg_cache_block_entropy: f64,
    /// Maximum cache-block entropy observed, bits.
    pub max_cache_block_entropy: f64,
}

/// The result of characterising one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleCharacterization {
    /// The pattern used for the segment map (normally `"0111"`).
    pub pattern: DataPattern,
    /// Entropy of each evaluated segment, as `(segment index, bits)`.
    pub segment_entropy: Vec<(usize, f64)>,
    /// The highest-entropy segment found.
    pub best_segment: Segment,
    /// Entropy of the best segment, in bits.
    pub best_segment_entropy: f64,
    /// Per-cache-block entropy of the best segment, in bits.
    pub best_segment_cache_blocks: Vec<f64>,
    /// The conditions under which the characterisation ran.
    pub conditions: OperatingConditions,
}

impl ModuleCharacterization {
    /// Average segment entropy across the evaluated segments (the Table 3
    /// "Avg." column).
    pub fn average_segment_entropy(&self) -> f64 {
        if self.segment_entropy.is_empty() {
            return 0.0;
        }
        self.segment_entropy.iter().map(|(_, e)| e).sum::<f64>() / self.segment_entropy.len() as f64
    }

    /// Number of SHA-256 input blocks with 256 bits of entropy available in
    /// the best segment (`SIB = floor(segment_entropy / 256)`, Section 7.2).
    pub fn sha_input_blocks(&self) -> usize {
        (self.best_segment_entropy / RANDOM_NUMBER_BITS as f64).floor() as usize
    }

    /// Groups the best segment's cache blocks into contiguous ranges that
    /// each accumulate at least 256 bits of entropy — the column-address sets
    /// the memory controller stores (Section 8). Returns `(start_block,
    /// end_block_exclusive)` ranges.
    pub fn entropy_block_ranges(&self) -> Vec<(usize, usize)> {
        let mut ranges = Vec::new();
        let mut acc = 0.0;
        let mut start = 0;
        for (i, e) in self.best_segment_cache_blocks.iter().enumerate() {
            acc += e;
            if acc >= RANDOM_NUMBER_BITS as f64 {
                ranges.push((start, i + 1));
                start = i + 1;
                acc = 0.0;
            }
        }
        ranges
    }
}

/// Sweeps the data patterns of Figure 8 over a sample of segments and
/// returns per-pattern average/maximum cache-block entropy.
pub fn pattern_sweep(
    model: &QuacAnalogModel,
    patterns: &[DataPattern],
    cfg: &CharacterizationConfig,
) -> Vec<PatternStats> {
    let segments = model.geometry().segments_per_bank();
    let blocks = model.geometry().cache_blocks_per_row();
    patterns
        .iter()
        .map(|&pattern| {
            let mut sum = 0.0;
            let mut count = 0usize;
            let mut max = 0.0f64;
            let mut s = 0;
            while s < segments {
                for cb in 0..blocks {
                    let e = cache_block_entropy_strided(model, Segment::new(s), cb, pattern, cfg);
                    sum += e;
                    count += 1;
                    max = max.max(e);
                }
                s += cfg.segment_stride;
            }
            PatternStats {
                pattern,
                avg_cache_block_entropy: sum / count.max(1) as f64,
                max_cache_block_entropy: max,
            }
        })
        .collect()
}

fn cache_block_entropy_strided(
    model: &QuacAnalogModel,
    segment: Segment,
    cache_block: usize,
    pattern: DataPattern,
    cfg: &CharacterizationConfig,
) -> f64 {
    let start = cache_block * CACHE_BLOCK_BITS;
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut b = start;
    while b < start + CACHE_BLOCK_BITS {
        sum += model.bitline_entropy(segment, b, pattern, cfg.conditions);
        count += 1;
        b += cfg.bitline_stride;
    }
    sum * CACHE_BLOCK_BITS as f64 / count.max(1) as f64
}

/// Builds the per-segment entropy map (Figure 9) and selects the
/// highest-entropy segment, then profiles its cache blocks (Figure 10).
pub fn characterize_module(
    model: &QuacAnalogModel,
    pattern: DataPattern,
    cfg: &CharacterizationConfig,
) -> ModuleCharacterization {
    let segments = model.geometry().segments_per_bank();
    let mut segment_entropy = Vec::new();
    let mut best = (Segment::new(0), f64::MIN);
    let mut s = 0;
    while s < segments {
        let seg = Segment::new(s);
        let e = model.segment_entropy(seg, pattern, cfg.conditions, cfg.bitline_stride);
        segment_entropy.push((s, e));
        if e > best.1 {
            best = (seg, e);
        }
        s += cfg.segment_stride;
    }
    // Profile the best segment's cache blocks exactly (it is only 128 blocks).
    let blocks = model.geometry().cache_blocks_per_row();
    let best_segment_cache_blocks: Vec<f64> = (0..blocks)
        .map(|cb| model.cache_block_entropy(best.0, cb, pattern, cfg.conditions))
        .collect();
    let best_entropy: f64 = best_segment_cache_blocks.iter().sum();
    ModuleCharacterization {
        pattern,
        segment_entropy,
        best_segment: best.0,
        best_segment_entropy: best_entropy,
        best_segment_cache_blocks,
        conditions: cfg.conditions,
    }
}

/// Per-chip segment entropy at a given temperature (the Figure 14 study).
/// Returns the per-chip maximum and average segment entropy over the sampled
/// segments.
pub fn chip_temperature_study(
    model: &QuacAnalogModel,
    chip: usize,
    pattern: DataPattern,
    temperature_c: f64,
    cfg: &CharacterizationConfig,
) -> (f64, f64) {
    let segments = model.geometry().segments_per_bank();
    let conditions = OperatingConditions::at_temperature(temperature_c);
    let mut max = 0.0f64;
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut s = 0;
    while s < segments {
        let e = model.chip_segment_entropy(Segment::new(s), chip, pattern, conditions, cfg.bitline_stride);
        max = max.max(e);
        sum += e;
        count += 1;
        s += cfg.segment_stride;
    }
    (max, sum / count.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dram_analog::{ModuleVariation, PAPER_MODULES};
    use qt_dram_core::DramGeometry;

    fn tiny_model() -> QuacAnalogModel {
        let geom = DramGeometry::tiny_test();
        QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 31))
    }

    fn tiny_cfg() -> CharacterizationConfig {
        CharacterizationConfig { segment_stride: 1, bitline_stride: 1, conditions: OperatingConditions::nominal() }
    }

    #[test]
    fn best_pattern_dominates_the_sweep() {
        let model = tiny_model();
        let stats = pattern_sweep(&model, &DataPattern::figure8_patterns(), &tiny_cfg());
        assert_eq!(stats.len(), 8);
        let best = stats.iter().max_by(|a, b| a.avg_cache_block_entropy.partial_cmp(&b.avg_cache_block_entropy).unwrap()).unwrap();
        assert!(best.pattern.first_row_opposes_rest(), "best pattern was {}", best.pattern);
        let worst = stats.iter().min_by(|a, b| a.avg_cache_block_entropy.partial_cmp(&b.avg_cache_block_entropy).unwrap()).unwrap();
        assert!(best.avg_cache_block_entropy > 4.0 * worst.avg_cache_block_entropy.max(0.01));
        for s in &stats {
            assert!(s.max_cache_block_entropy >= s.avg_cache_block_entropy);
            assert!(s.max_cache_block_entropy <= CACHE_BLOCK_BITS as f64);
        }
    }

    #[test]
    fn characterisation_selects_the_highest_entropy_segment() {
        let model = tiny_model();
        let ch = characterize_module(&model, DataPattern::best_average(), &tiny_cfg());
        assert_eq!(ch.segment_entropy.len(), model.geometry().segments_per_bank());
        let best_listed = ch
            .segment_entropy
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(best_listed.0, ch.best_segment.index());
        assert!(ch.best_segment_entropy > ch.average_segment_entropy());
        assert_eq!(ch.best_segment_cache_blocks.len(), model.geometry().cache_blocks_per_row());
    }

    #[test]
    fn sha_input_blocks_and_ranges_are_consistent() {
        let model = tiny_model();
        let ch = characterize_module(&model, DataPattern::best_average(), &tiny_cfg());
        let ranges = ch.entropy_block_ranges();
        // Each range accumulates at least 256 bits of entropy.
        for (start, end) in &ranges {
            let e: f64 = ch.best_segment_cache_blocks[*start..*end].iter().sum();
            assert!(e >= RANDOM_NUMBER_BITS as f64);
        }
        // There cannot be more ranges than SIB.
        assert!(ranges.len() <= ch.sha_input_blocks().max(1));
    }

    #[test]
    fn paper_module_average_entropy_is_in_table3_ballpark() {
        // Characterise a sample of M1 and check the average segment entropy
        // lands within ±35% of the Table 3 value (sampling + calibration
        // tolerance).
        let m = &PAPER_MODULES[0];
        let model = m.analog_model();
        let cfg = CharacterizationConfig { segment_stride: 256, bitline_stride: 64, conditions: OperatingConditions::nominal() };
        let ch = characterize_module(&model, DataPattern::best_average(), &cfg);
        let avg = ch.average_segment_entropy();
        let target = m.table3_avg_segment_entropy;
        assert!(
            (avg - target).abs() / target < 0.35,
            "M1 avg segment entropy {avg:.1} vs Table 3 {target}"
        );
        assert!(ch.sha_input_blocks() >= 4, "SIB {}", ch.sha_input_blocks());
    }

    #[test]
    fn temperature_study_moves_entropy_in_the_chip_trend_direction() {
        let model = tiny_model();
        let cfg = tiny_cfg();
        for chip in 0..model.variation().chip_count() {
            let (max50, avg50) = chip_temperature_study(&model, chip, DataPattern::best_average(), 50.0, &cfg);
            let (max85, avg85) = chip_temperature_study(&model, chip, DataPattern::best_average(), 85.0, &cfg);
            assert!(max50 >= avg50 && max85 >= avg85);
            if model.variation().chip_follows_trend1(chip) {
                assert!(avg85 > avg50, "trend-1 chip {chip} should gain entropy with temperature");
            } else {
                assert!(avg85 < avg50, "trend-2 chip {chip} should lose entropy with temperature");
            }
        }
    }
}
