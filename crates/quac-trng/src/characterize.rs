//! One-time characterisation of a DRAM module for QUAC-TRNG (Section 6).
//!
//! Characterisation answers three questions: which data pattern maximises
//! entropy (Figure 8), which segments are high-entropy (Figure 9, Table 3),
//! and how that entropy is distributed over the cache blocks of the chosen
//! segment (Figure 10) so the controller can carve the row buffer into
//! SHA-256 input blocks that each carry 256 bits of Shannon entropy.

use qt_dram_analog::{OperatingConditions, QuacAnalogModel};
use qt_dram_core::{DataPattern, Segment, CACHE_BLOCK_BITS, RANDOM_NUMBER_BITS};
use serde::{Deserialize, Serialize};
use std::thread;

/// Number of worker threads characterisation sweeps shard across — the
/// workspace-wide `QUAC_THREADS` convention, shared with the NIST battery
/// through `qt_dram_core`.
pub use qt_dram_core::worker_threads;

/// Maps `f` over `items` on up to `threads` scoped workers, returning results
/// in item order. Each item is evaluated independently and the merge is a
/// positional copy, so the output is bit-identical to a serial map regardless
/// of the worker count — the property the `*_with_threads` characterisation
/// entry points rely on. Public so other sweeps (the figure binaries shard
/// modules with it) inherit the same determinism contract.
pub fn ordered_parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads.min(items.len()));
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let f = &f;
    thread::scope(|scope| {
        for (chunk_items, chunk_out) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (item, slot) in chunk_items.iter().zip(chunk_out.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("worker filled every slot")).collect()
}

/// The segment indices a sweep with the given stride evaluates.
fn sampled_segments(segments_per_bank: usize, stride: usize) -> Vec<usize> {
    assert!(stride > 0, "segment stride must be non-zero");
    (0..segments_per_bank).step_by(stride).collect()
}

/// Sampling configuration for characterisation sweeps. Full-resolution
/// characterisation of a real-size module is expensive (8192 segments ×
/// 65 536 bitlines), so sweeps can sample segments and stride bitlines; the
/// defaults keep the reproduction harness fast while remaining statistically
/// faithful.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationConfig {
    /// Evaluate every n-th segment (1 = all segments).
    pub segment_stride: usize,
    /// Evaluate every n-th bitline within a segment (1 = all bitlines).
    pub bitline_stride: usize,
    /// Operating conditions of the characterisation run.
    pub conditions: OperatingConditions,
}

impl CharacterizationConfig {
    /// Full-resolution characterisation at nominal conditions.
    pub fn exact() -> Self {
        CharacterizationConfig { segment_stride: 1, bitline_stride: 1, conditions: OperatingConditions::nominal() }
    }

    /// A fast configuration for tests and example programs.
    pub fn fast() -> Self {
        CharacterizationConfig { segment_stride: 64, bitline_stride: 16, conditions: OperatingConditions::nominal() }
    }

    /// Returns a copy with different operating conditions.
    pub fn with_conditions(mut self, conditions: OperatingConditions) -> Self {
        self.conditions = conditions;
        self
    }
}

impl Default for CharacterizationConfig {
    fn default() -> Self {
        Self::fast()
    }
}

/// Per-pattern entropy statistics over a module (Figure 8's metrics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternStats {
    /// The data pattern.
    pub pattern: DataPattern,
    /// Average cache-block entropy across all evaluated cache blocks, bits.
    pub avg_cache_block_entropy: f64,
    /// Maximum cache-block entropy observed, bits.
    pub max_cache_block_entropy: f64,
}

/// The result of characterising one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleCharacterization {
    /// The pattern used for the segment map (normally `"0111"`).
    pub pattern: DataPattern,
    /// Entropy of each evaluated segment, as `(segment index, bits)`.
    pub segment_entropy: Vec<(usize, f64)>,
    /// The highest-entropy segment found.
    pub best_segment: Segment,
    /// Entropy of the best segment, in bits.
    pub best_segment_entropy: f64,
    /// Per-cache-block entropy of the best segment, in bits.
    pub best_segment_cache_blocks: Vec<f64>,
    /// The conditions under which the characterisation ran.
    pub conditions: OperatingConditions,
}

impl ModuleCharacterization {
    /// Average segment entropy across the evaluated segments (the Table 3
    /// "Avg." column).
    pub fn average_segment_entropy(&self) -> f64 {
        if self.segment_entropy.is_empty() {
            return 0.0;
        }
        self.segment_entropy.iter().map(|(_, e)| e).sum::<f64>() / self.segment_entropy.len() as f64
    }

    /// Number of SHA-256 input blocks with 256 bits of entropy available in
    /// the best segment (`SIB = floor(segment_entropy / 256)`, Section 7.2).
    pub fn sha_input_blocks(&self) -> usize {
        (self.best_segment_entropy / RANDOM_NUMBER_BITS as f64).floor() as usize
    }

    /// Groups the best segment's cache blocks into contiguous ranges that
    /// each accumulate at least 256 bits of entropy — the column-address sets
    /// the memory controller stores (Section 8). Returns `(start_block,
    /// end_block_exclusive)` ranges.
    pub fn entropy_block_ranges(&self) -> Vec<(usize, usize)> {
        let mut ranges = Vec::new();
        let mut acc = 0.0;
        let mut start = 0;
        for (i, e) in self.best_segment_cache_blocks.iter().enumerate() {
            acc += e;
            if acc >= RANDOM_NUMBER_BITS as f64 {
                ranges.push((start, i + 1));
                start = i + 1;
                acc = 0.0;
            }
        }
        ranges
    }
}

/// Sweeps the data patterns of Figure 8 over a sample of segments and
/// returns per-pattern average/maximum cache-block entropy, sharding
/// `(pattern, segment)` work items across [`worker_threads`] scoped workers.
pub fn pattern_sweep(
    model: &QuacAnalogModel,
    patterns: &[DataPattern],
    cfg: &CharacterizationConfig,
) -> Vec<PatternStats> {
    pattern_sweep_with_threads(model, patterns, cfg, worker_threads())
}

/// Single-threaded reference implementation of [`pattern_sweep`]; the
/// parallel path is property-tested to match it exactly.
pub fn pattern_sweep_serial(
    model: &QuacAnalogModel,
    patterns: &[DataPattern],
    cfg: &CharacterizationConfig,
) -> Vec<PatternStats> {
    pattern_sweep_with_threads(model, patterns, cfg, 1)
}

/// [`pattern_sweep`] with an explicit worker count. The work items are
/// *segments* (not `(pattern, segment)` pairs): the per-bitline static
/// offsets depend on neither pattern nor temperature, so each item derives
/// its segment's offset grid once ([`QuacAnalogModel::static_offset_grid`])
/// and shares it across all patterns — one grid derivation per segment
/// instead of one per probe. Every `(pattern, segment)` value is unchanged
/// and per-pattern statistics fold the per-segment subtotals in segment
/// order, so the result is bit-identical for any `threads` (and to the
/// pre-sharing sweep, which the proptests pin via the serial reference).
pub fn pattern_sweep_with_threads(
    model: &QuacAnalogModel,
    patterns: &[DataPattern],
    cfg: &CharacterizationConfig,
    threads: usize,
) -> Vec<PatternStats> {
    let segments = sampled_segments(model.geometry().segments_per_bank(), cfg.segment_stride);
    let blocks = model.geometry().cache_blocks_per_row();
    // Per segment: the cache-block entropy subtotal and maximum under each
    // pattern, all patterns walking one shared offset grid.
    let per_segment: Vec<Vec<(f64, f64)>> = ordered_parallel_map(&segments, threads, |&s| {
        let segment = Segment::new(s);
        let grid = model.static_offset_grid(segment, cfg.bitline_stride, cfg.conditions.age_days);
        patterns
            .iter()
            .map(|&pattern| {
                let prober = model.prober(segment, pattern, cfg.conditions);
                let mut sum = 0.0;
                let mut max = 0.0f64;
                for (block_sum, count) in
                    prober.cache_block_entropy_sums_with_grid(&grid, cfg.bitline_stride)
                {
                    let e = block_sum * CACHE_BLOCK_BITS as f64 / count.max(1) as f64;
                    sum += e;
                    max = max.max(e);
                }
                (sum, max)
            })
            .collect()
    });
    patterns
        .iter()
        .enumerate()
        .map(|(pi, &pattern)| {
            let mut sum = 0.0;
            let mut max = 0.0f64;
            for row in &per_segment {
                sum += row[pi].0;
                max = max.max(row[pi].1);
            }
            let count = (segments.len() * blocks).max(1);
            PatternStats {
                pattern,
                avg_cache_block_entropy: sum / count as f64,
                max_cache_block_entropy: max,
            }
        })
        .collect()
}

/// Builds the per-segment entropy map (Figure 9) and selects the
/// highest-entropy segment, then profiles its cache blocks (Figure 10),
/// sharding the segment sweep across [`worker_threads`] scoped workers.
pub fn characterize_module(
    model: &QuacAnalogModel,
    pattern: DataPattern,
    cfg: &CharacterizationConfig,
) -> ModuleCharacterization {
    characterize_module_with_threads(model, pattern, cfg, worker_threads())
}

/// Single-threaded reference implementation of [`characterize_module`]; the
/// parallel path is property-tested to match it exactly.
pub fn characterize_module_serial(
    model: &QuacAnalogModel,
    pattern: DataPattern,
    cfg: &CharacterizationConfig,
) -> ModuleCharacterization {
    characterize_module_with_threads(model, pattern, cfg, 1)
}

/// [`characterize_module`] with an explicit worker count. Each segment's
/// entropy is computed independently and merged in segment order, so the
/// returned [`ModuleCharacterization`] is bit-identical for any `threads`.
///
/// The sweep visits every segment exactly once, so it probes through
/// [`qt_dram_analog::SegmentProber::entropy_sum_fused`]: static offsets are
/// computed inline with the entropy walk, skipping the shared offset-cache
/// lock, the grid allocation, and its second memory pass — those only pay
/// off on revisits, which this sweep never makes. (Bit-identical to the
/// cached path; `segment_entropy`'s scaling is reproduced exactly.)
pub fn characterize_module_with_threads(
    model: &QuacAnalogModel,
    pattern: DataPattern,
    cfg: &CharacterizationConfig,
    threads: usize,
) -> ModuleCharacterization {
    let segments = sampled_segments(model.geometry().segments_per_bank(), cfg.segment_stride);
    let row_bits = model.geometry().row_bits;
    let entropies = ordered_parallel_map(&segments, threads, |&s| {
        let prober = model.prober(Segment::new(s), pattern, cfg.conditions);
        let (sum, count) = prober.entropy_sum_fused(0, row_bits, cfg.bitline_stride);
        sum * row_bits as f64 / count as f64
    });
    let segment_entropy: Vec<(usize, f64)> =
        segments.iter().copied().zip(entropies.iter().copied()).collect();
    let mut best = (Segment::new(0), f64::MIN);
    for &(s, e) in &segment_entropy {
        if e > best.1 {
            best = (Segment::new(s), e);
        }
    }
    // Profile the best segment's cache blocks exactly (it is only 128 blocks,
    // and the shared offset grid makes the stride-1 walk cheap).
    let best_segment_cache_blocks: Vec<f64> =
        model.cache_block_entropies(best.0, pattern, cfg.conditions);
    let best_entropy: f64 = best_segment_cache_blocks.iter().sum();
    ModuleCharacterization {
        pattern,
        segment_entropy,
        best_segment: best.0,
        best_segment_entropy: best_entropy,
        best_segment_cache_blocks,
        conditions: cfg.conditions,
    }
}

/// Per-chip segment entropy at a given temperature (the Figure 14 study).
/// Returns the per-chip maximum and average segment entropy over the sampled
/// segments, sharded like the other sweeps.
pub fn chip_temperature_study(
    model: &QuacAnalogModel,
    chip: usize,
    pattern: DataPattern,
    temperature_c: f64,
    cfg: &CharacterizationConfig,
) -> (f64, f64) {
    let segments = sampled_segments(model.geometry().segments_per_bank(), cfg.segment_stride);
    let conditions = OperatingConditions::at_temperature(temperature_c);
    let entropies = ordered_parallel_map(&segments, worker_threads(), |&s| {
        model.chip_segment_entropy(Segment::new(s), chip, pattern, conditions, cfg.bitline_stride)
    });
    let mut max = 0.0f64;
    let mut sum = 0.0;
    for &e in &entropies {
        max = max.max(e);
        sum += e;
    }
    (max, sum / entropies.len().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dram_analog::{ModuleVariation, PAPER_MODULES};
    use qt_dram_core::DramGeometry;

    fn tiny_model() -> QuacAnalogModel {
        let geom = DramGeometry::tiny_test();
        QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 31))
    }

    fn tiny_cfg() -> CharacterizationConfig {
        CharacterizationConfig { segment_stride: 1, bitline_stride: 1, conditions: OperatingConditions::nominal() }
    }

    #[test]
    fn best_pattern_dominates_the_sweep() {
        let model = tiny_model();
        let stats = pattern_sweep(&model, &DataPattern::figure8_patterns(), &tiny_cfg());
        assert_eq!(stats.len(), 8);
        let best = stats.iter().max_by(|a, b| a.avg_cache_block_entropy.partial_cmp(&b.avg_cache_block_entropy).unwrap()).unwrap();
        assert!(best.pattern.first_row_opposes_rest(), "best pattern was {}", best.pattern);
        let worst = stats.iter().min_by(|a, b| a.avg_cache_block_entropy.partial_cmp(&b.avg_cache_block_entropy).unwrap()).unwrap();
        assert!(best.avg_cache_block_entropy > 4.0 * worst.avg_cache_block_entropy.max(0.01));
        for s in &stats {
            assert!(s.max_cache_block_entropy >= s.avg_cache_block_entropy);
            assert!(s.max_cache_block_entropy <= CACHE_BLOCK_BITS as f64);
        }
    }

    #[test]
    fn characterisation_selects_the_highest_entropy_segment() {
        let model = tiny_model();
        let ch = characterize_module(&model, DataPattern::best_average(), &tiny_cfg());
        assert_eq!(ch.segment_entropy.len(), model.geometry().segments_per_bank());
        let best_listed = ch
            .segment_entropy
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(best_listed.0, ch.best_segment.index());
        assert!(ch.best_segment_entropy > ch.average_segment_entropy());
        assert_eq!(ch.best_segment_cache_blocks.len(), model.geometry().cache_blocks_per_row());
    }

    #[test]
    fn sha_input_blocks_and_ranges_are_consistent() {
        let model = tiny_model();
        let ch = characterize_module(&model, DataPattern::best_average(), &tiny_cfg());
        let ranges = ch.entropy_block_ranges();
        // Each range accumulates at least 256 bits of entropy.
        for (start, end) in &ranges {
            let e: f64 = ch.best_segment_cache_blocks[*start..*end].iter().sum();
            assert!(e >= RANDOM_NUMBER_BITS as f64);
        }
        // There cannot be more ranges than SIB.
        assert!(ranges.len() <= ch.sha_input_blocks().max(1));
    }

    #[test]
    fn paper_module_average_entropy_is_in_table3_ballpark() {
        // Characterise a sample of M1 and check the average segment entropy
        // lands within ±35% of the Table 3 value (sampling + calibration
        // tolerance).
        let m = &PAPER_MODULES[0];
        let model = m.analog_model();
        let cfg = CharacterizationConfig { segment_stride: 256, bitline_stride: 64, conditions: OperatingConditions::nominal() };
        let ch = characterize_module(&model, DataPattern::best_average(), &cfg);
        let avg = ch.average_segment_entropy();
        let target = m.table3_avg_segment_entropy;
        assert!(
            (avg - target).abs() / target < 0.35,
            "M1 avg segment entropy {avg:.1} vs Table 3 {target}"
        );
        assert!(ch.sha_input_blocks() >= 4, "SIB {}", ch.sha_input_blocks());
    }

    #[test]
    fn fused_sweep_matches_the_cached_entropy_path_bit_for_bit() {
        // The sweep's fused probe (offsets inline, no shared cache) must
        // reproduce `model.segment_entropy` — the cached path — exactly.
        let model = tiny_model();
        let cfg = CharacterizationConfig {
            segment_stride: 3,
            bitline_stride: 2,
            conditions: OperatingConditions::at_temperature(61.0),
        };
        let ch = characterize_module_serial(&model, DataPattern::best_average(), &cfg);
        for &(s, e) in &ch.segment_entropy {
            let cached = model.segment_entropy(
                Segment::new(s),
                DataPattern::best_average(),
                cfg.conditions,
                cfg.bitline_stride,
            );
            assert_eq!(e.to_bits(), cached.to_bits(), "segment {s}");
        }
    }

    #[test]
    fn parallel_characterisation_is_bit_identical_to_serial() {
        let model = tiny_model();
        let cfg = tiny_cfg();
        let serial = characterize_module_serial(&model, DataPattern::best_average(), &cfg);
        for threads in [2, 3, 5, 16] {
            let parallel = characterize_module_with_threads(
                &model,
                DataPattern::best_average(),
                &cfg,
                threads,
            );
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_pattern_sweep_is_bit_identical_to_serial() {
        let model = tiny_model();
        let cfg = tiny_cfg();
        let patterns = DataPattern::figure8_patterns();
        let serial = pattern_sweep_serial(&model, &patterns, &cfg);
        for threads in [2, 4, 7] {
            let parallel = pattern_sweep_with_threads(&model, &patterns, &cfg, threads);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_parallel_equals_serial_for_any_module_and_config(
            seed in proptest::prelude::any::<u64>(),
            threads in 1usize..12,
            segment_stride in 1usize..8,
            bitline_stride in 1usize..8,
        ) {
            let geom = DramGeometry::tiny_test();
            let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, seed));
            let cfg = CharacterizationConfig {
                segment_stride,
                bitline_stride,
                conditions: OperatingConditions::nominal(),
            };
            let serial = characterize_module_serial(&model, DataPattern::best_average(), &cfg);
            let parallel = characterize_module_with_threads(
                &model, DataPattern::best_average(), &cfg, threads);
            proptest::prop_assert_eq!(parallel, serial);
        }
    }

    #[test]
    fn temperature_study_moves_entropy_in_the_chip_trend_direction() {
        let model = tiny_model();
        let cfg = tiny_cfg();
        for chip in 0..model.variation().chip_count() {
            let (max50, avg50) = chip_temperature_study(&model, chip, DataPattern::best_average(), 50.0, &cfg);
            let (max85, avg85) = chip_temperature_study(&model, chip, DataPattern::best_average(), 85.0, &cfg);
            assert!(max50 >= avg50 && max85 >= avg85);
            if model.variation().chip_follows_trend1(chip) {
                assert!(avg85 > avg50, "trend-1 chip {chip} should gain entropy with temperature");
            } else {
                assert!(avg85 < avg50, "trend-2 chip {chip} should lose entropy with temperature");
            }
        }
    }
}
