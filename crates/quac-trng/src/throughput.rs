//! Analytic throughput and latency models (Sections 7.2–7.4).

use qt_crypto::Sha256HardwareCost;
use qt_dram_core::{DramGeometry, SpeedGrade, TimingParams, TransferRate, RANDOM_NUMBER_BITS};
use qt_memctrl::schedule::{quac_iteration, random_number_latency_ns, QuacScheduleConfig};
use serde::{Deserialize, Serialize};

/// Throughput of one named configuration (a bar of Figure 11).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigurationThroughput {
    /// Configuration name ("One Bank", "BGP", "RC + BGP").
    pub name: &'static str,
    /// Per-channel random-number throughput in Gb/s.
    pub throughput_gbps: f64,
    /// Per-iteration latency in nanoseconds.
    pub iteration_latency_ns: f64,
    /// Random bits produced per iteration.
    pub bits_per_iteration: f64,
}

/// The QUAC-TRNG throughput model for one module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputModel {
    /// Module geometry.
    pub geom: DramGeometry,
    /// Entropy of the module's highest-entropy segment, in bits (from
    /// characterisation or Table 3).
    pub max_segment_entropy: f64,
    /// SHA-256 hardware cost model used for post-processing accounting.
    pub sha: Sha256HardwareCost,
}

impl ThroughputModel {
    /// Builds the model from a maximum segment entropy.
    pub fn new(geom: DramGeometry, max_segment_entropy: f64) -> Self {
        ThroughputModel { geom, max_segment_entropy, sha: Sha256HardwareCost::paper_reference() }
    }

    /// SHA input blocks per segment: `floor(entropy / 256)` (Section 7.2).
    pub fn sha_input_blocks(&self) -> usize {
        (self.max_segment_entropy / RANDOM_NUMBER_BITS as f64).floor() as usize
    }

    /// Random bits produced per iteration for a configuration spanning
    /// `banks` banks.
    pub fn bits_per_iteration(&self, banks: usize) -> f64 {
        (banks * self.sha_input_blocks() * RANDOM_NUMBER_BITS) as f64
    }

    /// Per-channel throughput of one configuration at the given speed grade.
    pub fn configuration_throughput(
        &self,
        cfg: QuacScheduleConfig,
        grade: SpeedGrade,
        name: &'static str,
    ) -> ConfigurationThroughput {
        let timing = TimingParams::for_speed_grade(grade);
        let rate = grade.transfer_rate();
        let schedule = quac_iteration(cfg, &timing, rate, &self.geom);
        let bits = self.bits_per_iteration(cfg.banks);
        ConfigurationThroughput {
            name,
            throughput_gbps: schedule.throughput_gbps(bits),
            iteration_latency_ns: schedule.latency_ns,
            bits_per_iteration: bits,
        }
    }

    /// The three Figure 11 configurations at DDR4-2400.
    pub fn figure11(&self) -> [ConfigurationThroughput; 3] {
        let grade = SpeedGrade::Ddr4_2400;
        [
            self.configuration_throughput(QuacScheduleConfig::one_bank(&self.geom), grade, "One Bank"),
            self.configuration_throughput(QuacScheduleConfig::bgp(&self.geom), grade, "BGP"),
            self.configuration_throughput(QuacScheduleConfig::rc_bgp(&self.geom), grade, "RC + BGP"),
        ]
    }

    /// Per-channel RC+BGP throughput at an arbitrary transfer rate (a point
    /// on the QUAC-TRNG curve of Figure 13).
    pub fn scaled_throughput_gbps(&self, rate: TransferRate) -> f64 {
        let grade = SpeedGrade::Projected(rate.mts());
        self.configuration_throughput(QuacScheduleConfig::rc_bgp(&self.geom), grade, "RC + BGP")
            .throughput_gbps
    }

    /// Aggregate throughput of a multi-channel system (Table 2 reports the
    /// four-channel value, 13.76 Gb/s).
    pub fn system_throughput_gbps(&self, channels: usize, rate: TransferRate) -> f64 {
        channels as f64 * self.scaled_throughput_gbps(rate)
    }

    /// Latency of producing one 256-bit random number (Table 2: 274 ns),
    /// counting the QUAC sequence, reading enough cache blocks to gather
    /// 256 bits of entropy, and the SHA-256 hash.
    pub fn random_number_latency_ns(&self, rate: TransferRate) -> f64 {
        let timing = TimingParams::for_speed_grade(SpeedGrade::Projected(rate.mts()));
        // Blocks needed so that their combined entropy reaches 256 bits,
        // assuming entropy is spread evenly over the segment's blocks.
        let blocks = self.geom.cache_blocks_per_row();
        let per_block = self.max_segment_entropy / blocks as f64;
        let needed = (RANDOM_NUMBER_BITS as f64 / per_block.max(1e-9)).ceil() as usize;
        random_number_latency_ns(&timing, rate, needed.min(blocks), self.sha.latency_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dram_analog::profiles::average_of_max_segment_entropy;

    fn population_model() -> ThroughputModel {
        ThroughputModel::new(DramGeometry::ddr4_4gb_x8_module(), average_of_max_segment_entropy())
    }

    #[test]
    fn figure11_ordering_and_magnitudes() {
        let m = population_model();
        let [one, bgp, rc] = m.figure11();
        assert!(one.throughput_gbps < bgp.throughput_gbps);
        assert!(bgp.throughput_gbps < rc.throughput_gbps);
        // Paper averages: 0.49 / 0.75 / 3.44 Gb/s. Allow generous envelopes.
        assert!(one.throughput_gbps > 0.25 && one.throughput_gbps < 0.9, "one bank {}", one.throughput_gbps);
        assert!(bgp.throughput_gbps > 0.45 && bgp.throughput_gbps < 1.5, "bgp {}", bgp.throughput_gbps);
        assert!(rc.throughput_gbps > 2.2 && rc.throughput_gbps < 5.5, "rc+bgp {}", rc.throughput_gbps);
        // RC+BGP iteration latency is about 2 µs (paper: 1940 ns).
        assert!(rc.iteration_latency_ns > 1200.0 && rc.iteration_latency_ns < 2800.0);
    }

    #[test]
    fn sha_input_blocks_match_paper_average() {
        let m = population_model();
        // The paper reports ~7664 bits per 4-bank iteration = ~7.5 SIB/bank.
        assert!(m.sha_input_blocks() >= 6 && m.sha_input_blocks() <= 9, "SIB {}", m.sha_input_blocks());
        let bits = m.bits_per_iteration(4);
        assert!(bits > 6000.0 && bits < 9500.0, "bits/iteration {bits}");
    }

    #[test]
    fn four_channel_system_reaches_double_digit_gbps() {
        let m = population_model();
        let tp = m.system_throughput_gbps(4, TransferRate::ddr4_2400());
        // Paper: 13.76 Gb/s for four channels.
        assert!(tp > 9.0 && tp < 20.0, "4-channel throughput {tp}");
    }

    #[test]
    fn throughput_scales_with_transfer_rate() {
        let m = population_model();
        let base = m.scaled_throughput_gbps(TransferRate::ddr4_2400());
        let fast = m.scaled_throughput_gbps(TransferRate::from_mts(12_000).unwrap());
        // Figure 13: quasi-linear scaling (2400 → 12000 is 5×; expect ≥ 2.5×).
        assert!(fast > 2.5 * base, "base {base} fast {fast}");
    }

    #[test]
    fn random_number_latency_is_order_hundreds_of_ns() {
        let m = population_model();
        let l = m.random_number_latency_ns(TransferRate::ddr4_2400());
        // Table 2: 274 ns.
        assert!(l > 80.0 && l < 600.0, "latency {l}");
    }

    #[test]
    fn low_entropy_module_produces_zero_blocks_and_bits() {
        // A segment below 256 bits of entropy yields no SHA input blocks:
        // the configuration generates nothing, but the model stays finite.
        let m = ThroughputModel::new(DramGeometry::ddr4_4gb_x8_module(), 200.0);
        assert_eq!(m.sha_input_blocks(), 0);
        assert_eq!(m.bits_per_iteration(4), 0.0);
        let [one, bgp, rc] = m.figure11();
        for cfg in [&one, &bgp, &rc] {
            assert_eq!(cfg.throughput_gbps, 0.0, "{}", cfg.name);
            assert!(cfg.iteration_latency_ns.is_finite() && cfg.iteration_latency_ns > 0.0);
        }
        // Latency stays finite even as per-block entropy approaches zero
        // (the block count clamps to the row's blocks).
        let zero = ThroughputModel::new(DramGeometry::ddr4_4gb_x8_module(), 0.0);
        let l = zero.random_number_latency_ns(TransferRate::ddr4_2400());
        assert!(l.is_finite() && l > 0.0, "latency {l}");
    }

    #[test]
    fn entropy_threshold_crossing_adds_whole_blocks() {
        // sha_input_blocks is floor(entropy / 256): block count steps at
        // exact multiples of the random-number width.
        let geom = DramGeometry::ddr4_4gb_x8_module();
        assert_eq!(ThroughputModel::new(geom, 255.9).sha_input_blocks(), 0);
        assert_eq!(ThroughputModel::new(geom, 256.0).sha_input_blocks(), 1);
        assert_eq!(ThroughputModel::new(geom, 511.9).sha_input_blocks(), 1);
        assert_eq!(ThroughputModel::new(geom, 512.0).sha_input_blocks(), 2);
        // Throughput is monotone in segment entropy at fixed timing.
        let lo = ThroughputModel::new(geom, 1024.0).scaled_throughput_gbps(TransferRate::ddr4_2400());
        let hi = ThroughputModel::new(geom, 2048.0).scaled_throughput_gbps(TransferRate::ddr4_2400());
        assert!(hi > lo, "lo {lo} hi {hi}");
    }

    #[test]
    fn system_throughput_is_linear_in_channels() {
        let m = population_model();
        let rate = TransferRate::ddr4_2400();
        let one = m.system_throughput_gbps(1, rate);
        assert_eq!(m.system_throughput_gbps(0, rate), 0.0);
        assert!((m.system_throughput_gbps(4, rate) - 4.0 * one).abs() < 1e-12);
        assert!((one - m.scaled_throughput_gbps(rate)).abs() < 1e-12);
    }

    #[test]
    fn throughput_model_is_a_pure_function_of_its_fields() {
        // Copies agree on every derived quantity — the model carries no
        // hidden state, so reports can be cached/serialised freely.
        let m = population_model();
        let copy = m;
        assert_eq!(m, copy);
        assert_eq!(m.figure11(), copy.figure11());
        assert_eq!(
            m.random_number_latency_ns(TransferRate::ddr4_2400()),
            copy.random_number_latency_ns(TransferRate::ddr4_2400()),
        );
    }
}
