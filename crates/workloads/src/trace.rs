//! Trace generation: converts a workload profile into a stream of timed DRAM
//! requests.

use crate::profiles::WorkloadProfile;
use qt_dram_core::{BankAddr, BankGroupAddr, ColumnAddr, DramGeometry, RowAddr};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Whether a memory request reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// A cache-block read (LLC miss fill).
    Read,
    /// A cache-block write (dirty eviction).
    Write,
}

/// One last-level-cache miss arriving at the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryRequest {
    /// Core cycle at which the request arrives at the controller.
    pub arrival_cycle: u64,
    /// Read or write.
    pub kind: RequestKind,
    /// Target bank group.
    pub bank_group: BankGroupAddr,
    /// Target bank within the group.
    pub bank: BankAddr,
    /// Target row.
    pub row: RowAddr,
    /// Target column.
    pub column: ColumnAddr,
}

/// Generates a synthetic request stream for one workload.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    geom: DramGeometry,
    rng: ChaCha8Rng,
    /// Most recently accessed row per bank (for row-buffer locality).
    open_row: Vec<RowAddr>,
    next_cycle: f64,
}

impl TraceGenerator {
    /// Creates a generator for a workload on a given module geometry.
    pub fn new(profile: WorkloadProfile, geom: DramGeometry, seed: u64) -> Self {
        let banks = geom.banks_per_rank();
        TraceGenerator {
            profile,
            geom,
            rng: ChaCha8Rng::seed_from_u64(seed),
            open_row: vec![RowAddr::new(0); banks],
            next_cycle: 0.0,
        }
    }

    /// The workload profile behind this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Generates the next request. Inter-arrival times follow an exponential
    /// distribution with the workload's mean request rate; addresses follow
    /// the workload's row-buffer locality.
    pub fn next_request(&mut self) -> MemoryRequest {
        // Exponential inter-arrival time in core cycles.
        let rate = self.profile.requests_per_cycle().max(1e-9);
        let u: f64 = self.rng.gen_range(1e-12..1.0);
        self.next_cycle += -u.ln() / rate;
        let arrival_cycle = self.next_cycle as u64;

        let bank_group = self.rng.gen_range(0..self.geom.bank_groups);
        let bank = self.rng.gen_range(0..self.geom.banks_per_group);
        let flat = bank_group * self.geom.banks_per_group + bank;

        let row = if self.rng.gen::<f64>() < self.profile.row_buffer_hit_rate {
            self.open_row[flat]
        } else {
            let r = RowAddr::new(self.rng.gen_range(0..self.geom.rows_per_bank()));
            self.open_row[flat] = r;
            r
        };
        let column = ColumnAddr::new(self.rng.gen_range(0..self.geom.columns_per_row()));
        let kind = if self.rng.gen::<f64>() < self.profile.write_fraction {
            RequestKind::Write
        } else {
            RequestKind::Read
        };
        MemoryRequest {
            arrival_cycle,
            kind,
            bank_group: BankGroupAddr::new(bank_group),
            bank: BankAddr::new(bank),
            row,
            column,
        }
    }

    /// Generates all requests arriving within the first `cycles` core cycles.
    pub fn generate_for_cycles(&mut self, cycles: u64) -> Vec<MemoryRequest> {
        let mut out = Vec::new();
        loop {
            let req = self.next_request();
            if req.arrival_cycle >= cycles {
                break;
            }
            out.push(req);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::by_name;

    #[test]
    fn request_rate_tracks_mpki() {
        let geom = DramGeometry::ddr4_4gb_x8_module();
        let cycles = 400_000;
        let mcf = TraceGenerator::new(by_name("mcf").unwrap().clone(), geom, 1)
            .generate_for_cycles(cycles)
            .len();
        let namd = TraceGenerator::new(by_name("namd").unwrap().clone(), geom, 1)
            .generate_for_cycles(cycles)
            .len();
        assert!(mcf > 10 * namd.max(1), "mcf {mcf} namd {namd}");
        // Rate roughly matches the profile expectation.
        let expected = by_name("mcf").unwrap().requests_per_cycle() * cycles as f64;
        assert!((mcf as f64 - expected).abs() / expected < 0.15, "mcf {mcf} expected {expected}");
    }

    #[test]
    fn arrival_cycles_are_monotonic_and_addresses_valid() {
        let geom = DramGeometry::ddr4_4gb_x8_module();
        let reqs = TraceGenerator::new(by_name("gcc").unwrap().clone(), geom, 7)
            .generate_for_cycles(200_000);
        assert!(!reqs.is_empty());
        let mut prev = 0;
        for r in &reqs {
            assert!(r.arrival_cycle >= prev);
            prev = r.arrival_cycle;
            assert!(r.bank_group.index() < geom.bank_groups);
            assert!(r.bank.index() < geom.banks_per_group);
            assert!(r.row.index() < geom.rows_per_bank());
            assert!(r.column.index() < geom.columns_per_row());
        }
    }

    #[test]
    fn row_buffer_locality_is_respected() {
        let geom = DramGeometry::ddr4_4gb_x8_module();
        let mut libquantum = TraceGenerator::new(by_name("libquantum").unwrap().clone(), geom, 3);
        let reqs = libquantum.generate_for_cycles(300_000);
        // Count consecutive same-bank accesses that reuse the row.
        let mut same = 0usize;
        let mut total = 0usize;
        let mut last: std::collections::HashMap<usize, RowAddr> = Default::default();
        for r in &reqs {
            let flat = r.bank_group.index() * geom.banks_per_group + r.bank.index();
            if let Some(prev) = last.get(&flat) {
                total += 1;
                if *prev == r.row {
                    same += 1;
                }
            }
            last.insert(flat, r.row);
        }
        let hit_rate = same as f64 / total.max(1) as f64;
        assert!(hit_rate > 0.6, "libquantum should be row-buffer friendly, got {hit_rate}");
    }

    #[test]
    fn write_fraction_is_respected() {
        let geom = DramGeometry::ddr4_4gb_x8_module();
        let reqs = TraceGenerator::new(by_name("lbm").unwrap().clone(), geom, 9)
            .generate_for_cycles(200_000);
        let writes = reqs.iter().filter(|r| r.kind == RequestKind::Write).count();
        let frac = writes as f64 / reqs.len() as f64;
        assert!((frac - 0.45).abs() < 0.05, "write fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let geom = DramGeometry::tiny_test();
        let a = TraceGenerator::new(by_name("gcc").unwrap().clone(), geom, 42).generate_for_cycles(50_000);
        let b = TraceGenerator::new(by_name("gcc").unwrap().clone(), geom, 42).generate_for_cycles(50_000);
        let c = TraceGenerator::new(by_name("gcc").unwrap().clone(), geom, 43).generate_for_cycles(50_000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
