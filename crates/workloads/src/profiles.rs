//! Per-workload memory-behaviour profiles for the 23 SPEC CPU2006 workloads
//! evaluated in Figure 12.

use serde::{Deserialize, Serialize};

/// Coarse memory-intensity class of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Heavily memory-bound (high MPKI): little idle DRAM bandwidth remains.
    MemoryBound,
    /// Moderate memory traffic.
    Balanced,
    /// Compute-bound (low MPKI): the DRAM bus is mostly idle.
    ComputeBound,
}

/// Memory behaviour of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// SPEC CPU2006 benchmark name.
    pub name: &'static str,
    /// Last-level-cache misses per kilo-instruction (memory intensity).
    pub mpki: f64,
    /// Fraction of requests that hit in an already-open row.
    pub row_buffer_hit_rate: f64,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// Instructions per cycle achieved by the 3.2 GHz core when memory is not
    /// the bottleneck (used to convert MPKI to requests per cycle).
    pub base_ipc: f64,
}

impl WorkloadProfile {
    /// Expected memory requests per core cycle.
    pub fn requests_per_cycle(&self) -> f64 {
        (self.mpki / 1000.0) * self.base_ipc
    }

    /// Coarse class of this workload.
    pub fn class(&self) -> WorkloadClass {
        if self.mpki >= 15.0 {
            WorkloadClass::MemoryBound
        } else if self.mpki >= 2.0 {
            WorkloadClass::Balanced
        } else {
            WorkloadClass::ComputeBound
        }
    }
}

/// The 23 SPEC CPU2006 workloads of Figure 12 with approximate memory
/// intensities from the public characterisation literature (values rounded;
/// only the relative ordering matters for the idle-bandwidth study).
pub static SPEC2006_WORKLOADS: &[WorkloadProfile] = &[
    WorkloadProfile { name: "bzip2", mpki: 3.4, row_buffer_hit_rate: 0.55, write_fraction: 0.30, base_ipc: 1.5 },
    WorkloadProfile { name: "gcc", mpki: 4.2, row_buffer_hit_rate: 0.50, write_fraction: 0.30, base_ipc: 1.3 },
    WorkloadProfile { name: "mcf", mpki: 32.0, row_buffer_hit_rate: 0.25, write_fraction: 0.25, base_ipc: 0.7 },
    WorkloadProfile { name: "milc", mpki: 22.0, row_buffer_hit_rate: 0.60, write_fraction: 0.35, base_ipc: 0.9 },
    WorkloadProfile { name: "zeusmp", mpki: 6.5, row_buffer_hit_rate: 0.55, write_fraction: 0.35, base_ipc: 1.4 },
    WorkloadProfile { name: "gromacs", mpki: 1.2, row_buffer_hit_rate: 0.65, write_fraction: 0.25, base_ipc: 1.8 },
    WorkloadProfile { name: "cactusADM", mpki: 9.5, row_buffer_hit_rate: 0.50, write_fraction: 0.40, base_ipc: 1.1 },
    WorkloadProfile { name: "leslie3d", mpki: 14.0, row_buffer_hit_rate: 0.60, write_fraction: 0.35, base_ipc: 1.0 },
    WorkloadProfile { name: "namd", mpki: 0.3, row_buffer_hit_rate: 0.70, write_fraction: 0.20, base_ipc: 2.0 },
    WorkloadProfile { name: "gobmk", mpki: 0.9, row_buffer_hit_rate: 0.55, write_fraction: 0.25, base_ipc: 1.6 },
    WorkloadProfile { name: "dealII", mpki: 1.5, row_buffer_hit_rate: 0.60, write_fraction: 0.25, base_ipc: 1.7 },
    WorkloadProfile { name: "soplex", mpki: 25.0, row_buffer_hit_rate: 0.40, write_fraction: 0.25, base_ipc: 0.8 },
    WorkloadProfile { name: "hmmer", mpki: 0.6, row_buffer_hit_rate: 0.65, write_fraction: 0.20, base_ipc: 1.9 },
    WorkloadProfile { name: "sjeng", mpki: 0.4, row_buffer_hit_rate: 0.55, write_fraction: 0.20, base_ipc: 1.7 },
    WorkloadProfile { name: "GemsFDTD", mpki: 16.0, row_buffer_hit_rate: 0.65, write_fraction: 0.40, base_ipc: 1.0 },
    WorkloadProfile { name: "libquantum", mpki: 28.0, row_buffer_hit_rate: 0.85, write_fraction: 0.25, base_ipc: 0.9 },
    WorkloadProfile { name: "h264ref", mpki: 1.8, row_buffer_hit_rate: 0.60, write_fraction: 0.25, base_ipc: 1.8 },
    WorkloadProfile { name: "lbm", mpki: 30.0, row_buffer_hit_rate: 0.70, write_fraction: 0.45, base_ipc: 0.8 },
    WorkloadProfile { name: "omnetpp", mpki: 21.0, row_buffer_hit_rate: 0.30, write_fraction: 0.30, base_ipc: 0.8 },
    WorkloadProfile { name: "astar", mpki: 5.0, row_buffer_hit_rate: 0.45, write_fraction: 0.30, base_ipc: 1.3 },
    WorkloadProfile { name: "wrf", mpki: 7.5, row_buffer_hit_rate: 0.60, write_fraction: 0.35, base_ipc: 1.3 },
    WorkloadProfile { name: "sphinx3", mpki: 12.0, row_buffer_hit_rate: 0.60, write_fraction: 0.20, base_ipc: 1.1 },
    WorkloadProfile { name: "xalancbmk", mpki: 18.0, row_buffer_hit_rate: 0.35, write_fraction: 0.30, base_ipc: 0.9 },
];

/// Looks up a workload profile by name.
pub fn by_name(name: &str) -> Option<&'static WorkloadProfile> {
    SPEC2006_WORKLOADS.iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_three_workloads_with_unique_names() {
        assert_eq!(SPEC2006_WORKLOADS.len(), 23);
        let names: std::collections::HashSet<_> = SPEC2006_WORKLOADS.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 23);
    }

    #[test]
    fn memory_bound_workloads_are_classified() {
        assert_eq!(by_name("mcf").unwrap().class(), WorkloadClass::MemoryBound);
        assert_eq!(by_name("lbm").unwrap().class(), WorkloadClass::MemoryBound);
        assert_eq!(by_name("namd").unwrap().class(), WorkloadClass::ComputeBound);
        assert_eq!(by_name("gcc").unwrap().class(), WorkloadClass::Balanced);
    }

    #[test]
    fn requests_per_cycle_orders_by_intensity() {
        let mcf = by_name("mcf").unwrap().requests_per_cycle();
        let namd = by_name("namd").unwrap().requests_per_cycle();
        assert!(mcf > 10.0 * namd);
        for w in SPEC2006_WORKLOADS {
            assert!(w.requests_per_cycle() > 0.0 && w.requests_per_cycle() < 0.2, "{}", w.name);
            assert!(w.row_buffer_hit_rate > 0.0 && w.row_buffer_hit_rate < 1.0);
            assert!(w.write_fraction > 0.0 && w.write_fraction < 1.0);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("sphinx3").is_some());
        assert!(by_name("not-a-benchmark").is_none());
    }
}
