//! Adversarial and bursty *service-level* workloads: request patterns
//! designed to stress the RNG service's scheduler and placement rather than
//! the DRAM bus.
//!
//! The SPEC2006 profiles in [`crate::profiles`] model well-behaved memory
//! traffic; a production RNG service additionally faces clients that are
//! actively inconvenient — burst trains that pile a queue up in one tick,
//! high-priority floods that try to starve bulk readers, and rank-affine
//! client mixes whose interleaving correlates with shard placement. These
//! generators produce such request streams deterministically (seeded
//! ChaCha8), so the scheduler's fairness bound and the placement rule can
//! be property-tested against hostile inputs with reproducible failures.
//!
//! The events are service submissions, not DRAM commands: each carries a
//! client, a priority, and a byte size, in submission order (`tick` is an
//! abstract arrival time; equal ticks arrive back-to-back).

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One request submission in an adversarial stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceRequestEvent {
    /// Abstract arrival tick (non-decreasing across a stream).
    pub tick: u64,
    /// Submitting client id.
    pub client: u32,
    /// `true` for a high-priority (latency-critical) request.
    pub high_priority: bool,
    /// Requested bytes.
    pub len: usize,
}

/// A hostile service-level workload shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdversarialProfile {
    /// Dense trains of back-to-back requests separated by idle gaps: every
    /// burst lands on the queue in one tick, stressing coalescing and the
    /// queue-depth accounting (the antithesis of SPEC's Poisson arrivals).
    BurstTrain {
        /// Clients submitting in each burst.
        clients: u32,
        /// Requests per client per burst.
        burst_requests: usize,
        /// Idle ticks between bursts.
        gap_ticks: u64,
        /// Bytes per request.
        bytes_per_request: usize,
    },
    /// A sustained high-priority flood from several aggressive clients with
    /// a trickle of normal-priority requests mixed in — bait for priority
    /// starvation. The scheduler's `fairness_window` bound is exactly what
    /// must hold here.
    StarvationBait {
        /// Flooding high-priority clients.
        high_clients: u32,
        /// Background normal-priority clients.
        normal_clients: u32,
        /// Fraction of events that are high-priority (clamped to [0, 1]).
        high_fraction: f64,
        /// Bytes per request.
        bytes_per_request: usize,
    },
    /// Rank-affine clients interleaving round-robin with rank-dependent
    /// request sizes — the multi-rank pattern whose arrival order correlates
    /// with naive placement, so least-loaded placement must actively
    /// rebalance it.
    MultiRankInterleave {
        /// Ranks (client groups) interleaving.
        ranks: u32,
        /// Clients per rank.
        clients_per_rank: u32,
        /// Base request size; rank `r` requests `(r + 1) · stride_bytes`.
        stride_bytes: usize,
    },
}

impl AdversarialProfile {
    /// A short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AdversarialProfile::BurstTrain { .. } => "burst_train",
            AdversarialProfile::StarvationBait { .. } => "starvation_bait",
            AdversarialProfile::MultiRankInterleave { .. } => "multi_rank_interleave",
        }
    }

    /// Representative instances of each shape, for sweeps.
    pub fn all() -> Vec<AdversarialProfile> {
        vec![
            AdversarialProfile::BurstTrain {
                clients: 4,
                burst_requests: 8,
                gap_ticks: 50,
                bytes_per_request: 256,
            },
            AdversarialProfile::StarvationBait {
                high_clients: 3,
                normal_clients: 2,
                high_fraction: 0.9,
                bytes_per_request: 128,
            },
            AdversarialProfile::MultiRankInterleave {
                ranks: 4,
                clients_per_rank: 2,
                stride_bytes: 64,
            },
        ]
    }

    /// Generates `count` submission events deterministically from `seed`.
    pub fn generate(&self, count: usize, seed: u64) -> Vec<ServiceRequestEvent> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(count);
        match *self {
            AdversarialProfile::BurstTrain {
                clients,
                burst_requests,
                gap_ticks,
                bytes_per_request,
            } => {
                let clients = clients.max(1);
                let mut tick = 0u64;
                while events.len() < count {
                    // One burst: every client fires `burst_requests`
                    // back-to-back submissions on the same tick.
                    for client in 0..clients {
                        for _ in 0..burst_requests.max(1) {
                            if events.len() == count {
                                break;
                            }
                            events.push(ServiceRequestEvent {
                                tick,
                                client,
                                // A sprinkle of priority inside the burst.
                                high_priority: rng.gen::<f64>() < 0.25,
                                len: bytes_per_request.max(1),
                            });
                        }
                    }
                    tick += gap_ticks.max(1);
                }
            }
            AdversarialProfile::StarvationBait {
                high_clients,
                normal_clients,
                high_fraction,
                bytes_per_request,
            } => {
                let high_clients = high_clients.max(1);
                let normal_clients = normal_clients.max(1);
                let p_high = high_fraction.clamp(0.0, 1.0);
                for tick in 0..count as u64 {
                    let high = rng.gen::<f64>() < p_high;
                    let client = if high {
                        rng.gen_range(0..high_clients)
                    } else {
                        high_clients + rng.gen_range(0..normal_clients)
                    };
                    events.push(ServiceRequestEvent {
                        tick,
                        client,
                        high_priority: high,
                        len: bytes_per_request.max(1),
                    });
                }
            }
            AdversarialProfile::MultiRankInterleave { ranks, clients_per_rank, stride_bytes } => {
                let ranks = ranks.max(1);
                let clients_per_rank = clients_per_rank.max(1);
                for i in 0..count as u64 {
                    let rank = (i % u64::from(ranks)) as u32;
                    let client = rank * clients_per_rank
                        + rng.gen_range(0..clients_per_rank);
                    events.push(ServiceRequestEvent {
                        tick: i,
                        client,
                        high_priority: rank == 0 && i % 7 == 0,
                        len: stride_bytes.max(1) * (rank as usize + 1),
                    });
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for profile in AdversarialProfile::all() {
            let a = profile.generate(500, 42);
            let b = profile.generate(500, 42);
            let c = profile.generate(500, 43);
            assert_eq!(a, b, "{}", profile.name());
            assert_eq!(a.len(), 500);
            if profile.name() != "multi_rank_interleave" {
                // The interleave pattern is mostly structural; the seeded
                // shapes must actually differ across seeds.
                assert_ne!(a, c, "{}", profile.name());
            }
        }
    }

    #[test]
    fn ticks_are_non_decreasing() {
        for profile in AdversarialProfile::all() {
            let events = profile.generate(400, 7);
            for pair in events.windows(2) {
                assert!(pair[0].tick <= pair[1].tick, "{}", profile.name());
            }
        }
    }

    #[test]
    fn burst_train_lands_bursts_on_shared_ticks_with_gaps() {
        let profile = AdversarialProfile::BurstTrain {
            clients: 3,
            burst_requests: 5,
            gap_ticks: 100,
            bytes_per_request: 64,
        };
        let events = profile.generate(60, 1);
        // 15 requests per burst tick, gaps of 100 ticks between bursts.
        let ticks: Vec<u64> = events.iter().map(|e| e.tick).collect();
        assert_eq!(ticks.iter().filter(|&&t| t == 0).count(), 15);
        assert_eq!(ticks.iter().filter(|&&t| t == 100).count(), 15);
        assert!(ticks.iter().all(|t| t % 100 == 0));
    }

    #[test]
    fn starvation_bait_is_mostly_high_priority_with_disjoint_clients() {
        let profile = AdversarialProfile::StarvationBait {
            high_clients: 2,
            normal_clients: 3,
            high_fraction: 0.9,
            bytes_per_request: 32,
        };
        let events = profile.generate(2000, 9);
        let high = events.iter().filter(|e| e.high_priority).count();
        assert!((high as f64 / 2000.0 - 0.9).abs() < 0.03, "high fraction {high}");
        for e in &events {
            if e.high_priority {
                assert!(e.client < 2);
            } else {
                assert!((2..5).contains(&e.client));
            }
        }
        assert!(events.iter().any(|e| !e.high_priority), "some normal work must exist");
    }

    #[test]
    fn multi_rank_interleave_covers_all_ranks_with_stride_sizes() {
        let profile =
            AdversarialProfile::MultiRankInterleave { ranks: 4, clients_per_rank: 2, stride_bytes: 64 };
        let events = profile.generate(800, 3);
        for (i, e) in events.iter().enumerate() {
            let rank = (i % 4) as u32;
            assert_eq!(e.len, 64 * (rank as usize + 1));
            assert!(e.client / 2 == rank, "client {} outside rank {rank}", e.client);
        }
        let sizes: std::collections::HashSet<usize> = events.iter().map(|e| e.len).collect();
        assert_eq!(sizes.len(), 4, "every rank's stride size appears");
    }
}
