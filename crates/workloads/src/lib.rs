//! # qt-workloads
//!
//! Synthetic SPEC CPU2006-like memory trace generation.
//!
//! The paper's system study (Section 7.3, Figure 12) replays SPEC2006 memory
//! traces through Ramulator to find idle DRAM-bus intervals. Those traces are
//! not redistributable, so this crate generates synthetic request streams
//! whose *memory intensity* (last-level-cache misses per kilo-instruction)
//! and row-buffer locality follow the published characterisation of each
//! workload. The memory system in `qt-memctrl` only cares about the arrival
//! process and address locality, which is exactly what these profiles encode.
//!
//! Beyond SPEC, [`adversarial`] generates hostile *service-level* request
//! patterns (burst trains, starvation bait, multi-rank interleaves) used to
//! property-test the RNG service's scheduler fairness and placement rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod profiles;
pub mod trace;

pub use adversarial::{AdversarialProfile, ServiceRequestEvent};
pub use profiles::{WorkloadClass, WorkloadProfile, SPEC2006_WORKLOADS};
pub use trace::{MemoryRequest, RequestKind, TraceGenerator};
