//! Error types for the DRAM core crate.

use std::fmt;

/// Errors produced when constructing or validating core DRAM types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramCoreError {
    /// A data-pattern string was not exactly four characters of `0`/`1`.
    InvalidDataPattern {
        /// The offending input string.
        input: String,
    },
    /// An address component exceeded the bounds implied by the geometry.
    AddressOutOfRange {
        /// Which component was out of range (e.g. `"row"`).
        component: &'static str,
        /// The offending value.
        value: usize,
        /// The exclusive upper bound.
        bound: usize,
    },
    /// A transfer rate was outside the supported range.
    UnsupportedTransferRate {
        /// The requested rate in MT/s.
        mts: u32,
    },
    /// A bit-vector operation was attempted on vectors of mismatched length.
    LengthMismatch {
        /// Length of the left operand in bits.
        left: usize,
        /// Length of the right operand in bits.
        right: usize,
    },
}

impl fmt::Display for DramCoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramCoreError::InvalidDataPattern { input } => {
                write!(f, "invalid data pattern {input:?}: expected four '0'/'1' characters")
            }
            DramCoreError::AddressOutOfRange { component, value, bound } => {
                write!(f, "{component} address {value} out of range (must be < {bound})")
            }
            DramCoreError::UnsupportedTransferRate { mts } => {
                write!(f, "unsupported DDR4 transfer rate {mts} MT/s")
            }
            DramCoreError::LengthMismatch { left, right } => {
                write!(f, "bit-vector length mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for DramCoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DramCoreError::InvalidDataPattern { input: "01".into() };
        assert!(e.to_string().contains("invalid data pattern"));
        let e = DramCoreError::AddressOutOfRange { component: "row", value: 70000, bound: 65536 };
        assert!(e.to_string().contains("row address 70000"));
        let e = DramCoreError::UnsupportedTransferRate { mts: 1 };
        assert!(e.to_string().contains("1 MT/s"));
        let e = DramCoreError::LengthMismatch { left: 8, right: 16 };
        assert!(e.to_string().contains("8 vs 16"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramCoreError>();
    }
}
