//! Segment initialization data patterns.
//!
//! A QUAC data pattern assigns a fill value (all-zeros or all-ones) to each of
//! the four rows of a segment before the QUAC operation (Section 6.1.3). The
//! paper writes patterns as four-character strings, e.g. `"0111"` meaning
//! row 0 is filled with zeros and rows 1–3 with ones; that pattern (and its
//! complement `"1000"`) yields the highest average entropy because the
//! first-activated row opposes the other three.

use crate::{BitVec, DramCoreError, ROWS_PER_SEGMENT};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The fill value of one row under a data pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowFill {
    /// The row is initialized to all zeros (cells discharged).
    Zeros,
    /// The row is initialized to all ones (cells charged).
    Ones,
}

impl RowFill {
    /// The logical bit value of this fill.
    pub fn bit(self) -> bool {
        matches!(self, RowFill::Ones)
    }

    /// The charge polarity of this fill: `+1.0` for charged cells (VDD),
    /// `-1.0` for discharged cells (0 V), as used by the charge-sharing model.
    pub fn charge_sign(self) -> f64 {
        match self {
            RowFill::Ones => 1.0,
            RowFill::Zeros => -1.0,
        }
    }

    /// Produces a full row of this fill value with the given width in bits.
    pub fn to_row(self, row_bits: usize) -> BitVec {
        BitVec::filled(row_bits, self.bit())
    }
}

/// A four-row segment initialization pattern, e.g. `"0111"`.
///
/// Index 0 corresponds to the segment's lowest-addressed row (the row that the
/// first ACT of the QUAC sequence targets in Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataPattern {
    fills: [RowFill; ROWS_PER_SEGMENT],
}

impl DataPattern {
    /// Creates a pattern from explicit per-row fills.
    pub fn new(fills: [RowFill; ROWS_PER_SEGMENT]) -> Self {
        DataPattern { fills }
    }

    /// Parses a pattern from a four-character `0`/`1` string such as
    /// `"0111"`.
    ///
    /// # Errors
    ///
    /// Returns [`DramCoreError::InvalidDataPattern`] if the string is not
    /// exactly four `0`/`1` characters.
    ///
    /// # Examples
    ///
    /// ```
    /// # use qt_dram_core::DataPattern;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let p = DataPattern::from_bits_str("0111")?;
    /// assert_eq!(p.to_string(), "0111");
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_bits_str(s: &str) -> Result<Self, DramCoreError> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() != ROWS_PER_SEGMENT {
            return Err(DramCoreError::InvalidDataPattern { input: s.to_string() });
        }
        let mut fills = [RowFill::Zeros; ROWS_PER_SEGMENT];
        for (i, c) in chars.iter().enumerate() {
            fills[i] = match c {
                '0' => RowFill::Zeros,
                '1' => RowFill::Ones,
                _ => return Err(DramCoreError::InvalidDataPattern { input: s.to_string() }),
            };
        }
        Ok(DataPattern { fills })
    }

    /// Creates a pattern from the low four bits of an index
    /// (bit 3 = row 0, …, bit 0 = row 3), so `0b0111 == "0111"`.
    pub fn from_index(index: u8) -> Self {
        let mut fills = [RowFill::Zeros; ROWS_PER_SEGMENT];
        for (row, fill) in fills.iter_mut().enumerate() {
            let bit = (index >> (ROWS_PER_SEGMENT - 1 - row)) & 1;
            *fill = if bit == 1 { RowFill::Ones } else { RowFill::Zeros };
        }
        DataPattern { fills }
    }

    /// The index of this pattern (inverse of [`DataPattern::from_index`]).
    pub fn index(&self) -> u8 {
        self.fills
            .iter()
            .enumerate()
            .map(|(row, f)| (f.bit() as u8) << (ROWS_PER_SEGMENT - 1 - row))
            .sum()
    }

    /// The highest-average-entropy pattern found in the paper's
    /// characterisation (`"0111"`, Section 6.1.3).
    pub fn best_average() -> Self {
        Self::from_bits_str("0111").expect("static pattern is valid")
    }

    /// The fill of the given row (0–3).
    ///
    /// # Panics
    ///
    /// Panics if `row >= 4`.
    pub fn fill(&self, row: usize) -> RowFill {
        self.fills[row]
    }

    /// All four fills in row order.
    pub fn fills(&self) -> [RowFill; ROWS_PER_SEGMENT] {
        self.fills
    }

    /// Number of rows filled with ones.
    pub fn ones_count(&self) -> usize {
        self.fills.iter().filter(|f| f.bit()).count()
    }

    /// Returns `true` if the pattern stores conflicting data (not all rows
    /// identical), the precondition for QUAC-induced metastability
    /// (Section 5.1).
    pub fn is_conflicting(&self) -> bool {
        let ones = self.ones_count();
        ones != 0 && ones != ROWS_PER_SEGMENT
    }

    /// Returns `true` if row 0 (the first-activated row) stores the inverse
    /// of all three other rows — the configuration that maximises entropy
    /// according to Section 6.1.3 (`"0111"` and `"1000"`).
    pub fn first_row_opposes_rest(&self) -> bool {
        let r0 = self.fills[0].bit();
        self.fills[1..].iter().all(|f| f.bit() != r0)
    }

    /// Returns the complement pattern (every fill inverted).
    pub fn complement(&self) -> Self {
        let mut fills = self.fills;
        for f in &mut fills {
            *f = if f.bit() { RowFill::Zeros } else { RowFill::Ones };
        }
        DataPattern { fills }
    }

    /// Materialises the pattern as four full rows of `row_bits` bits each.
    pub fn to_rows(&self, row_bits: usize) -> [BitVec; ROWS_PER_SEGMENT] {
        [
            self.fills[0].to_row(row_bits),
            self.fills[1].to_row(row_bits),
            self.fills[2].to_row(row_bits),
            self.fills[3].to_row(row_bits),
        ]
    }

    /// All 16 possible patterns in index order (`"0000"` … `"1111"`),
    /// the exhaustive set tested in Section 6.1.2.
    pub fn all() -> Vec<DataPattern> {
        (0u8..16).map(DataPattern::from_index).collect()
    }

    /// The eight patterns shown in Figure 8 (`"0100"` … `"1011"`); the others
    /// are omitted by the paper for insufficient entropy.
    pub fn figure8_patterns() -> Vec<DataPattern> {
        ["0100", "0101", "0110", "0111", "1000", "1001", "1010", "1011"]
            .iter()
            .map(|s| DataPattern::from_bits_str(s).expect("static patterns are valid"))
            .collect()
    }
}

impl fmt::Display for DataPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for fill in &self.fills {
            write!(f, "{}", if fill.bit() { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl std::str::FromStr for DataPattern {
    type Err = DramCoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::from_bits_str(s)
    }
}

/// All 16 data-pattern strings in index order, matching
/// [`DataPattern::all`].
pub const ALL_DATA_PATTERNS: [&str; 16] = [
    "0000", "0001", "0010", "0011", "0100", "0101", "0110", "0111", "1000", "1001", "1010",
    "1011", "1100", "1101", "1110", "1111",
];

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ALL_DATA_PATTERNS {
            let p = DataPattern::from_bits_str(s).unwrap();
            assert_eq!(p.to_string(), s);
            assert_eq!(DataPattern::from_index(p.index()), p);
        }
    }

    #[test]
    fn invalid_patterns_rejected() {
        assert!(DataPattern::from_bits_str("011").is_err());
        assert!(DataPattern::from_bits_str("01110").is_err());
        assert!(DataPattern::from_bits_str("01a1").is_err());
        assert!("0x11".parse::<DataPattern>().is_err());
        assert!("0111".parse::<DataPattern>().is_ok());
    }

    #[test]
    fn conflicting_classification() {
        assert!(!DataPattern::from_bits_str("0000").unwrap().is_conflicting());
        assert!(!DataPattern::from_bits_str("1111").unwrap().is_conflicting());
        assert!(DataPattern::from_bits_str("0111").unwrap().is_conflicting());
        assert!(DataPattern::from_bits_str("0101").unwrap().is_conflicting());
    }

    #[test]
    fn best_average_pattern_opposes_first_row() {
        let p = DataPattern::best_average();
        assert_eq!(p.to_string(), "0111");
        assert!(p.first_row_opposes_rest());
        assert!(p.complement().first_row_opposes_rest());
        assert_eq!(p.complement().to_string(), "1000");
        assert!(!DataPattern::from_bits_str("0101").unwrap().first_row_opposes_rest());
    }

    #[test]
    fn figure8_patterns_are_the_documented_eight() {
        let pats = DataPattern::figure8_patterns();
        assert_eq!(pats.len(), 8);
        assert!(pats.iter().all(|p| p.is_conflicting()));
        assert!(pats.contains(&DataPattern::best_average()));
    }

    #[test]
    fn to_rows_materialises_fills() {
        let p = DataPattern::from_bits_str("0110").unwrap();
        let rows = p.to_rows(128);
        assert_eq!(rows[0].count_ones(), 0);
        assert_eq!(rows[1].count_ones(), 128);
        assert_eq!(rows[2].count_ones(), 128);
        assert_eq!(rows[3].count_ones(), 0);
    }

    #[test]
    fn charge_signs() {
        assert_eq!(RowFill::Ones.charge_sign(), 1.0);
        assert_eq!(RowFill::Zeros.charge_sign(), -1.0);
    }

    #[test]
    fn all_patterns_are_distinct() {
        let all = DataPattern::all();
        assert_eq!(all.len(), 16);
        let set: std::collections::HashSet<u8> = all.iter().map(|p| p.index()).collect();
        assert_eq!(set.len(), 16);
    }

    proptest! {
        #[test]
        fn prop_index_round_trip(idx in 0u8..16) {
            let p = DataPattern::from_index(idx);
            prop_assert_eq!(p.index(), idx);
            prop_assert_eq!(p.ones_count(), idx.count_ones() as usize);
        }

        #[test]
        fn prop_complement_is_involutive(idx in 0u8..16) {
            let p = DataPattern::from_index(idx);
            prop_assert_eq!(p.complement().complement(), p);
            prop_assert_eq!(p.is_conflicting(), p.complement().is_conflicting());
        }
    }
}
