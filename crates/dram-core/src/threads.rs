//! The workspace-wide worker-thread convention.
//!
//! Every sharded sweep in the workspace — characterisation
//! (`quac_trng::characterize`), the NIST battery (`qt_nist_sts`) — uses the
//! same policy for how many scoped workers to spawn, so one environment
//! variable tunes (or serialises, for debugging) all of them consistently.

use std::num::NonZeroUsize;

/// Number of worker threads sharded sweeps fan across: the `QUAC_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism.
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("QUAC_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn worker_threads_is_positive() {
        // Whatever the environment says, the answer is a usable count.
        assert!(super::worker_threads() >= 1);
    }
}
