//! DRAM transfer rates and bandwidth math.
//!
//! The paper evaluates throughput at standard DDR4 transfer rates
//! (2133–3200 MT/s) and projects it to future rates up to 12 GT/s
//! (Figure 13). A [`TransferRate`] captures the MT/s value and provides the
//! derived clock period, burst duration, and peak bandwidth used by the
//! command scheduler and throughput models.

use crate::DramCoreError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A DRAM data transfer rate in mega-transfers per second (MT/s).
///
/// DDR transfers two beats per clock, so the command-bus clock frequency is
/// half the transfer rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TransferRate {
    mts: u32,
}

impl TransferRate {
    /// Minimum supported rate (DDR4-1600).
    pub const MIN_MTS: u32 = 1600;
    /// Maximum supported (projected) rate, 12 GT/s as in Figure 13.
    pub const MAX_MTS: u32 = 12_800;

    /// Creates a transfer rate from an MT/s value.
    ///
    /// # Errors
    ///
    /// Returns [`DramCoreError::UnsupportedTransferRate`] for rates outside
    /// `[1600, 12800]` MT/s.
    pub fn from_mts(mts: u32) -> Result<Self, DramCoreError> {
        if !(Self::MIN_MTS..=Self::MAX_MTS).contains(&mts) {
            return Err(DramCoreError::UnsupportedTransferRate { mts });
        }
        Ok(TransferRate { mts })
    }

    /// DDR4-2400, the baseline rate of the paper's comparison (Section 7.4).
    pub fn ddr4_2400() -> Self {
        TransferRate { mts: 2400 }
    }

    /// DDR4-2133.
    pub fn ddr4_2133() -> Self {
        TransferRate { mts: 2133 }
    }

    /// DDR4-2666.
    pub fn ddr4_2666() -> Self {
        TransferRate { mts: 2666 }
    }

    /// DDR4-3200.
    pub fn ddr4_3200() -> Self {
        TransferRate { mts: 3200 }
    }

    /// The transfer rate in MT/s.
    pub fn mts(self) -> u32 {
        self.mts
    }

    /// The I/O clock frequency in MHz (half the transfer rate for DDR).
    pub fn clock_mhz(self) -> f64 {
        self.mts as f64 / 2.0
    }

    /// The clock period in nanoseconds.
    pub fn clock_period_ns(self) -> f64 {
        1000.0 / self.clock_mhz()
    }

    /// Duration of one BL8 burst in nanoseconds (8 beats = 4 clocks).
    pub fn burst_duration_ns(self) -> f64 {
        4.0 * self.clock_period_ns()
    }

    /// Peak bandwidth of one channel in bytes per second for the given bus
    /// width in bits.
    pub fn peak_bandwidth_bytes_per_s(self, bus_width_bits: usize) -> f64 {
        self.mts as f64 * 1.0e6 * bus_width_bits as f64 / 8.0
    }

    /// Peak bandwidth of one channel in gigabits per second for the given bus
    /// width in bits.
    pub fn peak_bandwidth_gbps(self, bus_width_bits: usize) -> f64 {
        self.mts as f64 * 1.0e6 * bus_width_bits as f64 / 1.0e9
    }

    /// Converts a cycle count (command-bus clocks) to nanoseconds.
    pub fn cycles_to_ns(self, cycles: u32) -> f64 {
        cycles as f64 * self.clock_period_ns()
    }

    /// Converts nanoseconds to command-bus clock cycles, rounding up.
    pub fn ns_to_cycles(self, ns: f64) -> u32 {
        (ns / self.clock_period_ns()).ceil() as u32
    }

    /// The set of transfer rates swept in Figure 13 of the paper:
    /// 2400, 3600, 4800, 7200, 9600, and 12 000 MT/s.
    pub fn figure13_sweep() -> Vec<TransferRate> {
        [2400, 3600, 4800, 7200, 9600, 12_000]
            .iter()
            .map(|&m| TransferRate { mts: m })
            .collect()
    }
}

impl Default for TransferRate {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

impl fmt::Display for TransferRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DDR4-{}", self.mts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_math_for_2400() {
        let r = TransferRate::ddr4_2400();
        assert_eq!(r.mts(), 2400);
        assert!((r.clock_mhz() - 1200.0).abs() < 1e-9);
        assert!((r.clock_period_ns() - 0.8333).abs() < 1e-3);
        assert!((r.burst_duration_ns() - 3.333).abs() < 1e-2);
    }

    #[test]
    fn peak_bandwidth_for_64_bit_bus() {
        let r = TransferRate::ddr4_2400();
        // 2400 MT/s * 8 bytes = 19.2 GB/s.
        assert!((r.peak_bandwidth_bytes_per_s(64) - 19.2e9).abs() < 1e6);
        assert!((r.peak_bandwidth_gbps(64) - 153.6).abs() < 1e-6);
    }

    #[test]
    fn cycle_conversions_round_trip() {
        let r = TransferRate::ddr4_3200();
        let ns = r.cycles_to_ns(10);
        assert_eq!(r.ns_to_cycles(ns), 10);
        // Rounding up: slightly more than 1 cycle takes 2 cycles.
        assert_eq!(r.ns_to_cycles(r.clock_period_ns() * 1.01), 2);
    }

    #[test]
    fn out_of_range_rates_rejected() {
        assert!(TransferRate::from_mts(800).is_err());
        assert!(TransferRate::from_mts(20_000).is_err());
        assert!(TransferRate::from_mts(2400).is_ok());
        assert!(TransferRate::from_mts(12_000).is_ok());
    }

    #[test]
    fn figure13_sweep_is_monotonic_and_starts_at_2400() {
        let sweep = TransferRate::figure13_sweep();
        assert_eq!(sweep.first().unwrap().mts(), 2400);
        assert_eq!(sweep.last().unwrap().mts(), 12_000);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", TransferRate::ddr4_2666()), "DDR4-2666");
    }
}
