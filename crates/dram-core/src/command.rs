//! DDR4 command encoding.
//!
//! Commands are modelled at the granularity the memory controller issues them
//! on the command bus (Section 2.1, Figure 2): activate, precharge, read,
//! write, refresh. Reduced-timing behaviour (the heart of QUAC) is expressed
//! by *when* commands are issued, not by the commands themselves, exactly as
//! on real hardware.

use crate::address::DramAddress;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a DDR4 command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandKind {
    /// Activate a row (`ACT`).
    Activate,
    /// Precharge a single bank (`PRE`).
    Precharge,
    /// Precharge all banks of the rank (`PREA`).
    PrechargeAll,
    /// Read a cache-block burst from the open row (`RD`).
    Read,
    /// Read with auto-precharge (`RDA`).
    ReadAutoPrecharge,
    /// Write a cache-block burst into the open row (`WR`).
    Write,
    /// Write with auto-precharge (`WRA`).
    WriteAutoPrecharge,
    /// Refresh (`REF`).
    Refresh,
    /// No operation / deselect.
    Nop,
}

impl CommandKind {
    /// Returns `true` for commands that transfer data over the data bus.
    pub fn uses_data_bus(self) -> bool {
        matches!(
            self,
            CommandKind::Read
                | CommandKind::ReadAutoPrecharge
                | CommandKind::Write
                | CommandKind::WriteAutoPrecharge
        )
    }

    /// Returns `true` for the read-family commands.
    pub fn is_read(self) -> bool {
        matches!(self, CommandKind::Read | CommandKind::ReadAutoPrecharge)
    }

    /// Returns `true` for the write-family commands.
    pub fn is_write(self) -> bool {
        matches!(self, CommandKind::Write | CommandKind::WriteAutoPrecharge)
    }

    /// Returns `true` for commands that implicitly precharge the bank.
    pub fn auto_precharges(self) -> bool {
        matches!(self, CommandKind::ReadAutoPrecharge | CommandKind::WriteAutoPrecharge)
    }

    /// Short mnemonic as printed in command traces.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CommandKind::Activate => "ACT",
            CommandKind::Precharge => "PRE",
            CommandKind::PrechargeAll => "PREA",
            CommandKind::Read => "RD",
            CommandKind::ReadAutoPrecharge => "RDA",
            CommandKind::Write => "WR",
            CommandKind::WriteAutoPrecharge => "WRA",
            CommandKind::Refresh => "REF",
            CommandKind::Nop => "NOP",
        }
    }
}

impl fmt::Display for CommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A DDR4 command together with its target address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Command {
    /// The command kind.
    pub kind: CommandKind,
    /// The target address. For bank-level commands only the bank components
    /// are meaningful; for `ACT` the row is meaningful; for `RD`/`WR` the
    /// column is meaningful.
    pub target: DramAddress,
}

impl Command {
    /// Creates an `ACT` command for the given address (row meaningful).
    pub fn activate(target: DramAddress) -> Self {
        Command { kind: CommandKind::Activate, target }
    }

    /// Creates a `PRE` command for the bank addressed by `target`.
    pub fn precharge(target: DramAddress) -> Self {
        Command { kind: CommandKind::Precharge, target }
    }

    /// Creates a `PREA` command for the rank addressed by `target`.
    pub fn precharge_all(target: DramAddress) -> Self {
        Command { kind: CommandKind::PrechargeAll, target }
    }

    /// Creates a `RD` command for the column addressed by `target`.
    pub fn read(target: DramAddress) -> Self {
        Command { kind: CommandKind::Read, target }
    }

    /// Creates a `WR` command for the column addressed by `target`.
    pub fn write(target: DramAddress) -> Self {
        Command { kind: CommandKind::Write, target }
    }

    /// Creates a `REF` command for the rank addressed by `target`.
    pub fn refresh(target: DramAddress) -> Self {
        Command { kind: CommandKind::Refresh, target }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.target)
    }
}

/// A command stamped with the time at which it appears on the command bus,
/// in nanoseconds from the start of the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedCommand {
    /// Issue time in nanoseconds.
    pub at_ns: f64,
    /// The command.
    pub command: Command,
}

impl TimedCommand {
    /// Creates a command issued at `at_ns` nanoseconds.
    pub fn new(at_ns: f64, command: Command) -> Self {
        TimedCommand { at_ns, command }
    }
}

impl fmt::Display for TimedCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>10.2} ns] {}", self.at_ns, self.command)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::{BankAddr, BankGroupAddr, ChannelAddr, RankAddr, RowAddr};

    fn addr() -> DramAddress {
        DramAddress::bank(
            ChannelAddr::new(0),
            RankAddr::new(0),
            BankGroupAddr::new(1),
            BankAddr::new(2),
        )
        .with_row(RowAddr::new(12))
    }

    #[test]
    fn data_bus_classification() {
        assert!(CommandKind::Read.uses_data_bus());
        assert!(CommandKind::WriteAutoPrecharge.uses_data_bus());
        assert!(!CommandKind::Activate.uses_data_bus());
        assert!(!CommandKind::Precharge.uses_data_bus());
        assert!(CommandKind::Read.is_read());
        assert!(!CommandKind::Read.is_write());
        assert!(CommandKind::Write.is_write());
        assert!(CommandKind::ReadAutoPrecharge.auto_precharges());
        assert!(!CommandKind::Read.auto_precharges());
    }

    #[test]
    fn constructors_set_kind_and_target() {
        let a = addr();
        assert_eq!(Command::activate(a).kind, CommandKind::Activate);
        assert_eq!(Command::precharge(a).kind, CommandKind::Precharge);
        assert_eq!(Command::precharge_all(a).kind, CommandKind::PrechargeAll);
        assert_eq!(Command::read(a).kind, CommandKind::Read);
        assert_eq!(Command::write(a).kind, CommandKind::Write);
        assert_eq!(Command::refresh(a).kind, CommandKind::Refresh);
        assert_eq!(Command::activate(a).target, a);
    }

    #[test]
    fn display_contains_mnemonic_and_time() {
        let tc = TimedCommand::new(12.5, Command::activate(addr()));
        let s = format!("{tc}");
        assert!(s.contains("ACT"));
        assert!(s.contains("12.50 ns"));
    }
}
