//! # qt-dram-core
//!
//! Foundational DRAM types shared by every other crate in the QUAC-TRNG
//! reproduction: device geometry, typed addresses, DDR4 commands, JEDEC timing
//! parameters, transfer-rate math, bit vectors for row data, and the segment
//! initialization data patterns studied by the paper.
//!
//! The organisation follows Section 2.1 of the paper: a channel contains
//! ranks, a rank contains bank groups, a bank group contains banks, a bank is
//! divided into subarrays, a subarray contains rows, and four consecutive rows
//! whose addresses differ only in their two least-significant bits form a
//! *DRAM segment* (Section 4).
//!
//! ## Example
//!
//! ```
//! use qt_dram_core::{DramGeometry, RowAddr, Segment, DataPattern};
//!
//! let geom = DramGeometry::ddr4_4gb_x8_module();
//! assert_eq!(geom.segments_per_bank(), 8192);
//!
//! // Rows {4,5,6,7} form segment 1.
//! let seg = Segment::containing(RowAddr::new(6));
//! assert_eq!(seg.index(), 1);
//! assert_eq!(seg.rows()[0], RowAddr::new(4));
//!
//! // The highest-average-entropy pattern from Figure 8.
//! let p = DataPattern::from_bits_str("0111").unwrap();
//! assert!(p.is_conflicting());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod bits;
pub mod command;
pub mod data;
pub mod error;
pub mod geometry;
pub mod rate;
pub mod threads;
pub mod timing;

pub use address::{
    BankAddr, BankGroupAddr, CacheBlockAddr, ChannelAddr, ColumnAddr, DramAddress, RankAddr,
    RowAddr, Segment, SubarrayAddr,
};
pub use bits::BitVec;
pub use command::{Command, CommandKind, TimedCommand};
pub use data::{DataPattern, RowFill, ALL_DATA_PATTERNS};
pub use error::DramCoreError;
pub use geometry::DramGeometry;
pub use rate::TransferRate;
pub use threads::worker_threads;
pub use timing::{SpeedGrade, TimingParams};

/// Number of rows in a DRAM segment (fixed by the hierarchical wordline
/// design described in Section 4.1: one master wordline drives four local
/// wordlines).
pub const ROWS_PER_SEGMENT: usize = 4;

/// Width of a cache block in bits (64 bytes), the granularity of data
/// transfers between the module and the memory controller (Section 2.1).
pub const CACHE_BLOCK_BITS: usize = 512;

/// Size of the random number produced by one post-processing step (SHA-256
/// output width), and the amount of Shannon entropy required per hash input
/// block (Section 5.2).
pub const RANDOM_NUMBER_BITS: usize = 256;
