//! JEDEC DDR4 timing parameters.
//!
//! The memory controller must respect these parameters for reliable
//! operation (Section 2.1, Figure 2); QUAC and the baseline TRNGs work by
//! deliberately *violating* specific parameters (tRAS, tRP, tRCD). The core
//! analog latencies are set by the DRAM array and are essentially constant in
//! nanoseconds across transfer rates, which is why latency-bound mechanisms
//! do not benefit from faster buses (Figure 13).

use crate::rate::TransferRate;
use serde::{Deserialize, Serialize};

/// A named DDR4 speed grade, or a projected future rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpeedGrade {
    /// DDR4-2133 (modules M1–M5 in Table 3).
    Ddr4_2133,
    /// DDR4-2400 (the comparison baseline of Section 7.4).
    Ddr4_2400,
    /// DDR4-2666 (modules M6–M12).
    Ddr4_2666,
    /// DDR4-3200 (modules M15–M17).
    Ddr4_3200,
    /// A projected rate beyond the DDR4 standard (Figure 13), in MT/s.
    Projected(u32),
}

impl SpeedGrade {
    /// The transfer rate of this speed grade.
    pub fn transfer_rate(self) -> TransferRate {
        let mts = match self {
            SpeedGrade::Ddr4_2133 => 2133,
            SpeedGrade::Ddr4_2400 => 2400,
            SpeedGrade::Ddr4_2666 => 2666,
            SpeedGrade::Ddr4_3200 => 3200,
            SpeedGrade::Projected(mts) => mts,
        };
        TransferRate::from_mts(mts).expect("speed grade rates are always in range")
    }
}

/// DDR4 timing parameters in nanoseconds.
///
/// All values are expressed in nanoseconds; cycle counts can be derived via
/// [`TransferRate`]. Defaults correspond to a typical DDR4-2400 CL17 part.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// ACT to internal read/write delay (row activation latency).
    pub t_rcd: f64,
    /// ACT to PRE minimum (row active time, charge-restoration window).
    pub t_ras: f64,
    /// PRE to ACT minimum (precharge latency, bitline settling to VDD/2).
    pub t_rp: f64,
    /// ACT to ACT (same bank) minimum; usually `t_ras + t_rp`.
    pub t_rc: f64,
    /// ACT to ACT, different bank group.
    pub t_rrd_s: f64,
    /// ACT to ACT, same bank group.
    pub t_rrd_l: f64,
    /// Column-to-column delay, different bank group.
    pub t_ccd_s: f64,
    /// Column-to-column delay, same bank group.
    pub t_ccd_l: f64,
    /// Four-activate window.
    pub t_faw: f64,
    /// CAS (read) latency.
    pub t_cl: f64,
    /// CAS write latency.
    pub t_cwl: f64,
    /// Write recovery time (end of write burst to PRE).
    pub t_wr: f64,
    /// Read to PRE delay.
    pub t_rtp: f64,
    /// Write-to-read turnaround, different bank group.
    pub t_wtr_s: f64,
    /// Write-to-read turnaround, same bank group.
    pub t_wtr_l: f64,
    /// Average refresh interval.
    pub t_refi: f64,
    /// Refresh cycle time.
    pub t_rfc: f64,
    /// Burst length in beats (BL8 for DDR4).
    pub burst_length: u32,
    /// Refresh window within which all rows must be refreshed (64 ms).
    pub t_refw_ms: f64,
}

impl TimingParams {
    /// Timing parameters for a typical DDR4-2400 CL17 device.
    pub fn ddr4_2400() -> Self {
        TimingParams {
            t_rcd: 14.16,
            t_ras: 32.0,
            t_rp: 14.16,
            t_rc: 46.16,
            t_rrd_s: 3.3,
            t_rrd_l: 4.9,
            t_ccd_s: 3.33,
            t_ccd_l: 5.0,
            t_faw: 21.0,
            t_cl: 14.16,
            t_cwl: 10.0,
            t_wr: 15.0,
            t_rtp: 7.5,
            t_wtr_s: 2.5,
            t_wtr_l: 7.5,
            t_refi: 7800.0,
            t_rfc: 350.0,
            burst_length: 8,
            t_refw_ms: 64.0,
        }
    }

    /// Timing parameters for a DDR4-2666 device (tRRD values quoted in
    /// Section 2.1 of the paper).
    pub fn ddr4_2666() -> Self {
        TimingParams {
            t_rcd: 14.25,
            t_ras: 32.0,
            t_rp: 14.25,
            t_rc: 46.25,
            t_rrd_s: 3.0,
            t_rrd_l: 4.9,
            t_ccd_s: 3.0,
            t_ccd_l: 5.0,
            t_faw: 21.0,
            t_cl: 14.25,
            t_cwl: 10.0,
            t_wr: 15.0,
            t_rtp: 7.5,
            t_wtr_s: 2.5,
            t_wtr_l: 7.5,
            t_refi: 7800.0,
            t_rfc: 350.0,
            burst_length: 8,
            t_refw_ms: 64.0,
        }
    }

    /// Timing parameters appropriate for the given speed grade. Core analog
    /// latencies stay constant; only bus-clock-derived column timings shrink
    /// with the faster clock, floored at the analog array limits.
    pub fn for_speed_grade(grade: SpeedGrade) -> Self {
        match grade {
            SpeedGrade::Ddr4_2400 => Self::ddr4_2400(),
            SpeedGrade::Ddr4_2666 => Self::ddr4_2666(),
            SpeedGrade::Ddr4_2133 | SpeedGrade::Ddr4_3200 | SpeedGrade::Projected(_) => {
                let mut p = Self::ddr4_2400();
                let rate = grade.transfer_rate();
                // Column-to-column timings are clock-derived (4 / 6 clocks),
                // but never faster than the internal prefetch limit.
                p.t_ccd_s = (4.0 * rate.clock_period_ns()).max(2.0);
                p.t_ccd_l = (6.0 * rate.clock_period_ns()).max(3.0);
                p.t_rrd_s = p.t_rrd_s.max(4.0 * rate.clock_period_ns());
                p.t_rrd_l = p.t_rrd_l.max(6.0 * rate.clock_period_ns());
                p
            }
        }
    }

    /// The "greatly violated" timing used by Algorithm 1 for both the
    /// ACT→PRE gap (violated tRAS) and the PRE→ACT gap (violated tRP):
    /// 2.5 ns.
    pub fn quac_violated_gap_ns() -> f64 {
        2.5
    }

    /// Duration of one BL8 data burst at the given transfer rate.
    pub fn burst_ns(&self, rate: TransferRate) -> f64 {
        self.burst_length as f64 / 2.0 * rate.clock_period_ns()
    }

    /// Time from issuing an ACT (with nominal timing) until the first column
    /// command may be issued.
    pub fn act_to_column_ns(&self) -> f64 {
        self.t_rcd
    }

    /// Minimum time between consecutive ACTs to the same bank
    /// (`tRAS + tRP = tRC`).
    pub fn act_to_act_same_bank_ns(&self) -> f64 {
        self.t_rc
    }

    /// Returns `true` if a PRE issued `gap_ns` after an ACT violates tRAS.
    pub fn violates_t_ras(&self, gap_ns: f64) -> bool {
        gap_ns < self.t_ras
    }

    /// Returns `true` if an ACT issued `gap_ns` after a PRE violates tRP.
    pub fn violates_t_rp(&self, gap_ns: f64) -> bool {
        gap_ns < self.t_rp
    }

    /// Returns `true` if a column command issued `gap_ns` after an ACT
    /// violates tRCD.
    pub fn violates_t_rcd(&self, gap_ns: f64) -> bool {
        gap_ns < self.t_rcd
    }

    /// Basic sanity checks: all latencies positive, tRC consistent.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("t_rcd", self.t_rcd),
            ("t_ras", self.t_ras),
            ("t_rp", self.t_rp),
            ("t_rc", self.t_rc),
            ("t_rrd_s", self.t_rrd_s),
            ("t_rrd_l", self.t_rrd_l),
            ("t_ccd_s", self.t_ccd_s),
            ("t_ccd_l", self.t_ccd_l),
            ("t_faw", self.t_faw),
            ("t_cl", self.t_cl),
            ("t_cwl", self.t_cwl),
            ("t_wr", self.t_wr),
            ("t_rtp", self.t_rtp),
            ("t_refi", self.t_refi),
            ("t_rfc", self.t_rfc),
        ];
        for (name, v) in fields {
            if v <= 0.0 || !v.is_finite() {
                return Err(format!("timing parameter {name} must be positive, got {v}"));
            }
        }
        if self.t_rc + 1e-9 < self.t_ras + self.t_rp {
            return Err(format!(
                "t_rc ({}) must be at least t_ras + t_rp ({})",
                self.t_rc,
                self.t_ras + self.t_rp
            ));
        }
        if self.burst_length == 0 {
            return Err("burst_length must be non-zero".to_string());
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_parameters_are_valid() {
        TimingParams::ddr4_2400().validate().unwrap();
        TimingParams::ddr4_2666().validate().unwrap();
        for grade in [
            SpeedGrade::Ddr4_2133,
            SpeedGrade::Ddr4_2400,
            SpeedGrade::Ddr4_2666,
            SpeedGrade::Ddr4_3200,
            SpeedGrade::Projected(12_000),
        ] {
            TimingParams::for_speed_grade(grade).validate().unwrap();
        }
    }

    #[test]
    fn quac_gap_violates_both_t_ras_and_t_rp() {
        let p = TimingParams::ddr4_2400();
        let gap = TimingParams::quac_violated_gap_ns();
        assert!(p.violates_t_ras(gap));
        assert!(p.violates_t_rp(gap));
        assert!(!p.violates_t_ras(p.t_ras));
        assert!(!p.violates_t_rp(p.t_rp + 0.1));
    }

    #[test]
    fn t_rcd_violation_check() {
        let p = TimingParams::ddr4_2400();
        assert!(p.violates_t_rcd(5.0));
        assert!(!p.violates_t_rcd(p.t_rcd));
    }

    #[test]
    fn burst_duration_scales_with_rate() {
        let p = TimingParams::ddr4_2400();
        let slow = p.burst_ns(TransferRate::ddr4_2400());
        let fast = p.burst_ns(TransferRate::from_mts(4800).unwrap());
        assert!((slow - 3.333).abs() < 0.01);
        assert!((fast - slow / 2.0).abs() < 1e-9);
    }

    #[test]
    fn faster_grades_keep_analog_latencies() {
        let base = TimingParams::ddr4_2400();
        let fast = TimingParams::for_speed_grade(SpeedGrade::Projected(12_000));
        assert_eq!(fast.t_rcd, base.t_rcd);
        assert_eq!(fast.t_ras, base.t_ras);
        assert_eq!(fast.t_rp, base.t_rp);
        // Column timings shrink but stay above the internal floor.
        assert!(fast.t_ccd_l <= base.t_ccd_l);
        assert!(fast.t_ccd_s >= 2.0);
    }

    #[test]
    fn invalid_timing_rejected() {
        let mut p = TimingParams::ddr4_2400();
        p.t_rcd = -1.0;
        assert!(p.validate().is_err());
        let mut p = TimingParams::ddr4_2400();
        p.t_rc = 10.0;
        assert!(p.validate().is_err());
        let mut p = TimingParams::ddr4_2400();
        p.burst_length = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn speed_grade_transfer_rates() {
        assert_eq!(SpeedGrade::Ddr4_2133.transfer_rate().mts(), 2133);
        assert_eq!(SpeedGrade::Projected(9600).transfer_rate().mts(), 9600);
    }
}
