//! DRAM device and module geometry.
//!
//! The geometry describes the hierarchical organisation of a DDR4 module as
//! seen by the memory controller (Section 2.1 of the paper): channels contain
//! ranks, ranks contain bank groups, bank groups contain banks, banks are
//! split into subarrays of rows, and rows span a number of bitlines equal to
//! the module's row width.

use crate::{ROWS_PER_SEGMENT, CACHE_BLOCK_BITS};
use serde::{Deserialize, Serialize};

/// Static geometry of a DRAM module (one rank view, per channel).
///
/// The defaults mirror the modules characterised in the paper (Appendix A,
/// Table 3): x8 DDR4 chips, eight chips per rank, 4 bank groups × 4 banks,
/// 64 K (65 536) rows per bank, and an 8 KiB (65 536-bit) row per module
/// (64 K bitlines per segment row, i.e. 128 cache blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramGeometry {
    /// Number of independent memory channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Bank groups per rank (DDR4: 4).
    pub bank_groups: usize,
    /// Banks per bank group (DDR4: 4).
    pub banks_per_group: usize,
    /// Subarrays per bank.
    pub subarrays_per_bank: usize,
    /// Rows per subarray.
    pub rows_per_subarray: usize,
    /// Number of bitlines spanned by one row at module level
    /// (chips × per-chip row width).
    pub row_bits: usize,
    /// Number of DRAM chips that make up one rank.
    pub chips_per_rank: usize,
    /// Data-bus width of one chip in bits (x4/x8/x16).
    pub chip_io_width: usize,
}

impl DramGeometry {
    /// Geometry of the 4 GB x8 DDR4 modules that dominate the paper's
    /// characterised population (Appendix A, Table 3): 4 bank groups × 4
    /// banks, 32 K rows per bank (8 K segments), 8 KiB module-level rows.
    pub fn ddr4_4gb_x8_module() -> Self {
        DramGeometry {
            channels: 1,
            ranks: 1,
            bank_groups: 4,
            banks_per_group: 4,
            subarrays_per_bank: 64,
            rows_per_subarray: 512,
            row_bits: 65_536,
            chips_per_rank: 8,
            chip_io_width: 8,
        }
    }

    /// Geometry of an 8 GB x8 DDR4 module (used for the Section 9 memory
    /// overhead accounting): twice the rows per bank of the 4 GB module.
    pub fn ddr4_8gb_x8_module() -> Self {
        DramGeometry { subarrays_per_bank: 128, ..Self::ddr4_4gb_x8_module() }
    }

    /// A deliberately small geometry for fast unit tests: 2 bank groups of
    /// 2 banks, 4 subarrays of 64 rows, 4096-bit rows (8 cache blocks).
    pub fn tiny_test() -> Self {
        DramGeometry {
            channels: 1,
            ranks: 1,
            bank_groups: 2,
            banks_per_group: 2,
            subarrays_per_bank: 4,
            rows_per_subarray: 64,
            row_bits: 4096,
            chips_per_rank: 8,
            chip_io_width: 8,
        }
    }

    /// The four-channel system configuration used in Section 7.3 / Table 2.
    pub fn four_channel_system() -> Self {
        DramGeometry { channels: 4, ..Self::ddr4_4gb_x8_module() }
    }

    /// Total banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.bank_groups * self.banks_per_group
    }

    /// Total rows in one bank.
    pub fn rows_per_bank(&self) -> usize {
        self.subarrays_per_bank * self.rows_per_subarray
    }

    /// Number of four-row segments in one bank (Section 4).
    pub fn segments_per_bank(&self) -> usize {
        self.rows_per_bank() / ROWS_PER_SEGMENT
    }

    /// Number of four-row segments in one subarray.
    pub fn segments_per_subarray(&self) -> usize {
        self.rows_per_subarray / ROWS_PER_SEGMENT
    }

    /// Number of 512-bit cache blocks in one row.
    pub fn cache_blocks_per_row(&self) -> usize {
        self.row_bits / CACHE_BLOCK_BITS
    }

    /// Number of column addresses per row, where one column selects one
    /// cache-block-sized burst (BL8 over the 64-bit module bus).
    pub fn columns_per_row(&self) -> usize {
        self.cache_blocks_per_row()
    }

    /// Total capacity of one rank in bits.
    pub fn rank_capacity_bits(&self) -> u64 {
        self.banks_per_rank() as u64 * self.rows_per_bank() as u64 * self.row_bits as u64
    }

    /// Total capacity of one rank in bytes.
    pub fn rank_capacity_bytes(&self) -> u64 {
        self.rank_capacity_bits() / 8
    }

    /// Total module capacity in bytes across all ranks of one channel.
    pub fn module_capacity_bytes(&self) -> u64 {
        self.rank_capacity_bytes() * self.ranks as u64
    }

    /// The module-level data bus width in bits (chips × chip IO width).
    pub fn bus_width_bits(&self) -> usize {
        self.chips_per_rank * self.chip_io_width
    }

    /// Theoretical maximum Shannon entropy of one segment in bits: one bit
    /// per bitline (footnote 7 of the paper: 64 K bits for the evaluated
    /// modules).
    pub fn max_segment_entropy_bits(&self) -> f64 {
        self.row_bits as f64
    }

    /// Theoretical maximum Shannon entropy of a cache block in bits
    /// (footnote 6: 512 bits).
    pub fn max_cache_block_entropy_bits(&self) -> f64 {
        CACHE_BLOCK_BITS as f64
    }

    /// Validates internal consistency (row width divisible by cache block
    /// size, rows divisible by segment size, non-zero dimensions).
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0
            || self.ranks == 0
            || self.bank_groups == 0
            || self.banks_per_group == 0
            || self.subarrays_per_bank == 0
            || self.rows_per_subarray == 0
            || self.row_bits == 0
            || self.chips_per_rank == 0
            || self.chip_io_width == 0
        {
            return Err("all geometry dimensions must be non-zero".to_string());
        }
        if self.row_bits % CACHE_BLOCK_BITS != 0 {
            return Err(format!(
                "row_bits ({}) must be a multiple of the cache-block size ({CACHE_BLOCK_BITS})",
                self.row_bits
            ));
        }
        if self.rows_per_subarray % ROWS_PER_SEGMENT != 0 {
            return Err(format!(
                "rows_per_subarray ({}) must be a multiple of the segment size ({ROWS_PER_SEGMENT})",
                self.rows_per_subarray
            ));
        }
        Ok(())
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::ddr4_4gb_x8_module()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_has_8k_segments_per_bank() {
        let g = DramGeometry::ddr4_4gb_x8_module();
        assert_eq!(g.rows_per_bank(), 32_768);
        assert_eq!(g.segments_per_bank(), 8_192);
        assert_eq!(g.cache_blocks_per_row(), 128);
        g.validate().unwrap();
    }

    #[test]
    fn module_capacities_match_their_names() {
        let g = DramGeometry::ddr4_4gb_x8_module();
        // 16 banks * 32K rows * 8 KiB rows = 4 GiB.
        assert_eq!(g.rank_capacity_bytes(), 4 * 1024 * 1024 * 1024);
        let g8 = DramGeometry::ddr4_8gb_x8_module();
        assert_eq!(g8.rank_capacity_bytes(), 8 * 1024 * 1024 * 1024);
        assert_eq!(g8.segments_per_bank(), 16_384);
    }

    #[test]
    fn bus_width_is_64_bits_for_x8_by_8_chips() {
        let g = DramGeometry::ddr4_4gb_x8_module();
        assert_eq!(g.bus_width_bits(), 64);
    }

    #[test]
    fn tiny_geometry_is_consistent() {
        let g = DramGeometry::tiny_test();
        g.validate().unwrap();
        assert_eq!(g.segments_per_subarray(), 16);
        assert_eq!(g.segments_per_bank(), 64);
        assert_eq!(g.cache_blocks_per_row(), 8);
    }

    #[test]
    fn four_channel_system_has_four_channels() {
        let g = DramGeometry::four_channel_system();
        assert_eq!(g.channels, 4);
        assert_eq!(g.banks_per_rank(), 16);
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        let mut g = DramGeometry::ddr4_4gb_x8_module();
        g.row_bits = 500; // not a multiple of 512
        assert!(g.validate().is_err());
        let mut g = DramGeometry::ddr4_4gb_x8_module();
        g.rows_per_subarray = 6; // not a multiple of 4
        assert!(g.validate().is_err());
        let mut g = DramGeometry::ddr4_4gb_x8_module();
        g.channels = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn max_entropies_match_paper_footnotes() {
        let g = DramGeometry::ddr4_4gb_x8_module();
        assert_eq!(g.max_segment_entropy_bits(), 65_536.0);
        assert_eq!(g.max_cache_block_entropy_bits(), 512.0);
    }
}
