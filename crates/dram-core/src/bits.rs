//! A compact bit vector used for DRAM row contents and TRNG bitstreams.
//!
//! Rows in the evaluated modules are 65 536 bits wide and characterisation
//! collects megabit-scale bitstreams per sense amplifier, so a dense `u64`
//! backed representation keeps memory use and copying cheap.

use crate::DramCoreError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-length, dense vector of bits backed by `u64` words.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates a bit vector of `len` bits, all zero.
    pub fn zeros(len: usize) -> Self {
        BitVec { len, words: vec![0u64; len.div_ceil(64)] }
    }

    /// Creates a bit vector of `len` bits, all one.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec { len, words: vec![u64::MAX; len.div_ceil(64)] };
        v.mask_tail();
        v
    }

    /// Creates a bit vector of `len` bits where every bit equals `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        if value {
            Self::ones(len)
        } else {
            Self::zeros(len)
        }
    }

    /// Builds a bit vector from an iterator of booleans.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut v = Self::zeros(0);
        let mut word = 0u64;
        let mut filled = 0u32;
        for b in bits {
            word |= (b as u64) << filled;
            filled += 1;
            if filled == 64 {
                v.words.push(word);
                v.len += 64;
                word = 0;
                filled = 0;
            }
        }
        if filled > 0 {
            v.words.push(word);
            v.len += filled as usize;
        }
        v
    }

    /// Builds a bit vector of `len` bits directly from packed `u64` storage
    /// words (bit `i` lives at `words[i / 64]`, bit position `i % 64`).
    /// Bits beyond `len` in the final word are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `words` holds fewer than `len` bits.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert!(words.len() * 64 >= len, "{} words cannot hold {len} bits", words.len());
        words.truncate(len.div_ceil(64));
        let mut v = BitVec { len, words };
        v.mask_tail();
        v
    }

    /// Builds a bit vector from a string of `'0'`/`'1'` characters
    /// (other characters are rejected).
    pub fn from_bit_str(s: &str) -> Result<Self, DramCoreError> {
        let mut bits = Vec::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '0' => bits.push(false),
                '1' => bits.push(true),
                _ => {
                    return Err(DramCoreError::InvalidDataPattern { input: s.to_string() });
                }
            }
        }
        Ok(Self::from_bits(bits))
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Sets every bit to `value`.
    pub fn fill(&mut self, value: bool) {
        let w = if value { u64::MAX } else { 0 };
        for word in &mut self.words {
            *word = w;
        }
        if value {
            self.mask_tail();
        }
    }

    /// The packed `u64` storage words (bit `i` lives at `words()[i / 64]`,
    /// bit position `i % 64`). Bits beyond `len()` in the final word are
    /// always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the packed storage words for word-at-a-time
    /// writers (e.g. the packed QUAC sampler). Callers that may set bits
    /// beyond `len()` in the final word must call [`BitVec::clear_tail`]
    /// afterwards so that `count_ones` and equality stay correct.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Clears any bits beyond `len()` in the final storage word. Needed only
    /// after bulk writes through [`BitVec::words_mut`].
    pub fn clear_tail(&mut self) {
        self.mask_tail();
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of clear bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Fraction of set bits, or 0.0 for an empty vector.
    pub fn ones_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Returns the bitwise XOR with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`DramCoreError::LengthMismatch`] if the lengths differ.
    pub fn xor(&self, other: &BitVec) -> Result<BitVec, DramCoreError> {
        if self.len != other.len {
            return Err(DramCoreError::LengthMismatch { left: self.len, right: other.len });
        }
        let words = self.words.iter().zip(&other.words).map(|(a, b)| a ^ b).collect();
        Ok(BitVec { len: self.len, words })
    }

    /// Hamming distance to `other` (number of differing bits).
    ///
    /// # Errors
    ///
    /// Returns [`DramCoreError::LengthMismatch`] if the lengths differ.
    pub fn hamming_distance(&self, other: &BitVec) -> Result<usize, DramCoreError> {
        Ok(self.xor(other)?.count_ones())
    }

    /// Reads up to 64 bits starting at `bit` as one word (bit `bit` in the
    /// result's LSB); positions beyond the backing storage read as zero.
    ///
    /// This is the primitive behind every word-parallel scan in the
    /// workspace (packed sampling, the word-wise Von Neumann corrector, the
    /// word-parallel NIST battery): callers process 64 stream positions per
    /// load instead of one `get` per bit. No bounds check is applied — out
    /// of range positions read as zero — so callers own their masking.
    pub fn word_at(&self, bit: usize) -> u64 {
        self.read_word(bit)
    }

    /// Number of set bits in `[start, end)` via a masked word scan —
    /// `slice(start, end).count_ones()` without materialising the slice.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn count_ones_range(&self, start: usize, end: usize) -> usize {
        assert!(start <= end && end <= self.len, "invalid range {start}..{end} of {}", self.len);
        if start == end {
            return 0;
        }
        let (first, last) = (start / 64, (end - 1) / 64);
        let lo_mask = u64::MAX << (start % 64);
        let hi_mask = u64::MAX >> (63 - (end - 1) % 64);
        if first == last {
            return (self.words[first] & lo_mask & hi_mask).count_ones() as usize;
        }
        let mut ones = (self.words[first] & lo_mask).count_ones() as usize;
        for &w in &self.words[first + 1..last] {
            ones += w.count_ones() as usize;
        }
        ones + (self.words[last] & hi_mask).count_ones() as usize
    }

    /// Number of positions `i` where bit `i` differs from bit `i + 1`
    /// (`0 ≤ i < len − 1`) — the run-boundary count of the stream, computed
    /// word-wise as `count_ones(w ^ (w >> 1))` with the successor word's
    /// first bit injected at each word boundary.
    pub fn transitions(&self) -> usize {
        if self.len < 2 {
            return 0;
        }
        let mut count = 0usize;
        let last = (self.len - 1) / 64;
        for (k, &w) in self.words[..=last].iter().enumerate() {
            // Bit j of `shifted` is the stream bit following position 64k+j.
            let next = self.words.get(k + 1).copied().unwrap_or(0);
            let shifted = (w >> 1) | (next << 63);
            let mut diff = w ^ shifted;
            if k == last {
                // Only transitions i → i+1 with i+1 < len are real.
                let valid = self.len - 1 - 64 * k;
                diff &= if valid >= 64 { u64::MAX } else { (1u64 << valid) - 1 };
            }
            count += diff.count_ones() as usize;
        }
        count
    }

    fn read_word(&self, bit: usize) -> u64 {
        let w = bit / 64;
        let s = bit % 64;
        let lo = self.words.get(w).copied().unwrap_or(0);
        if s == 0 {
            lo
        } else {
            let hi = self.words.get(w + 1).copied().unwrap_or(0);
            (lo >> s) | (hi << (64 - s))
        }
    }

    /// Writes the low `count` bits of `bits` at bit offset `offset`
    /// (1 ≤ `count` ≤ 64; the caller guarantees the range is in bounds).
    fn write_word(&mut self, offset: usize, bits: u64, count: usize) {
        let w = offset / 64;
        let s = offset % 64;
        let mask = if count == 64 { u64::MAX } else { (1u64 << count) - 1 };
        let bits = bits & mask;
        self.words[w] = (self.words[w] & !(mask << s)) | (bits << s);
        if s + count > 64 {
            let hi_mask = (1u64 << (s + count - 64)) - 1;
            self.words[w + 1] = (self.words[w + 1] & !hi_mask) | ((bits >> (64 - s)) & hi_mask);
        }
    }

    /// Copies `src` into this vector starting at bit offset `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + src.len() > self.len()`.
    pub fn copy_bits_from(&mut self, offset: usize, src: &BitVec) {
        assert!(
            offset + src.len <= self.len,
            "copy of {} bits at offset {offset} exceeds length {}",
            src.len,
            self.len
        );
        let mut remaining = src.len;
        for (k, &word) in src.words.iter().enumerate() {
            let count = remaining.min(64);
            self.write_word(offset + 64 * k, word, count);
            remaining -= count;
        }
    }

    /// Returns a new vector holding bits `[start, end)` of this one.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: usize, end: usize) -> BitVec {
        assert!(start <= end && end <= self.len, "invalid slice {start}..{end} of {}", self.len);
        let n = end - start;
        let words = (0..n.div_ceil(64)).map(|k| self.read_word(start + 64 * k)).collect();
        Self::from_words(words, n)
    }

    /// Appends all bits of `other` to this vector.
    pub fn extend_from(&mut self, other: &BitVec) {
        let old_len = self.len;
        self.len += other.len;
        self.words.resize(self.len.div_ceil(64), 0);
        let mut remaining = other.len;
        for (k, &word) in other.words.iter().enumerate() {
            let count = remaining.min(64);
            self.write_word(old_len + 64 * k, word, count);
            remaining -= count;
        }
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: bool) {
        self.len += 1;
        if self.words.len() * 64 < self.len {
            self.words.push(0);
        }
        self.set(self.len - 1, bit);
    }

    /// Iterates over the bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Packs the bits into bytes (LSB-first within each byte); the final byte
    /// is zero-padded.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        self.extract_bytes_into(0, self.len, &mut bytes);
        bytes
    }

    /// Packs bits `[start, end)` into bytes (LSB-first within each byte, the
    /// final byte zero-padded) — exactly `slice(start, end).to_bytes()`, but
    /// copying whole storage words instead of re-packing bit by bit, so the
    /// steady-state TRNG loop can feed sense-amplifier blocks to SHA-256
    /// without an intermediate `BitVec`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn extract_bytes(&self, start: usize, end: usize) -> Vec<u8> {
        let mut bytes = Vec::new();
        self.extract_bytes_into(start, end, &mut bytes);
        bytes
    }

    /// Like [`BitVec::extract_bytes`], but appends into a caller-provided
    /// buffer (cleared first) so hot loops can reuse one allocation.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn extract_bytes_into(&self, start: usize, end: usize, out: &mut Vec<u8>) {
        assert!(start <= end && end <= self.len, "invalid range {start}..{end} of {}", self.len);
        let n = end - start;
        out.clear();
        out.reserve(n.div_ceil(8));
        let full_words = n / 64;
        for k in 0..full_words {
            out.extend_from_slice(&self.read_word(start + 64 * k).to_le_bytes());
        }
        let rem_bits = n % 64;
        if rem_bits > 0 {
            let tail = self.read_word(start + 64 * full_words) & ((1u64 << rem_bits) - 1);
            out.extend_from_slice(&tail.to_le_bytes()[..rem_bits.div_ceil(8)]);
        }
    }

    /// Builds a bit vector from packed bytes produced by [`BitVec::to_bytes`].
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(len <= bytes.len() * 8, "len {len} exceeds available bits {}", bytes.len() * 8);
        let mut words = Vec::with_capacity(len.div_ceil(64));
        for chunk in bytes[..len.div_ceil(8)].chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            words.push(u64::from_le_bytes(w));
        }
        Self::from_words(words, len)
    }

    /// Clears bits beyond `len` in the final word so that `count_ones` stays
    /// correct after bulk fills.
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Show up to 64 bits, then an ellipsis, to keep Debug output usable.
        let shown: String =
            self.iter().take(64).map(|b| if b { '1' } else { '0' }).collect();
        if self.len > 64 {
            write!(f, "BitVec[{}]({shown}…)", self.len)
        } else {
            write!(f, "BitVec[{}]({shown})", self.len)
        }
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        Self::from_bits(iter)
    }
}

impl Extend<bool> for BitVec {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        for b in iter {
            self.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_ones_have_expected_counts() {
        let z = BitVec::zeros(130);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.count_zeros(), 130);
        let o = BitVec::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert_eq!(o.count_zeros(), 0);
        assert!((o.ones_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_get_round_trip() {
        let mut v = BitVec::zeros(200);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(199, true);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(199));
        assert!(!v.get(1) && !v.get(100));
        assert_eq!(v.count_ones(), 4);
        v.set(64, false);
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn fill_true_respects_length() {
        let mut v = BitVec::zeros(70);
        v.fill(true);
        assert_eq!(v.count_ones(), 70);
        v.fill(false);
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn xor_and_hamming_distance() {
        let a = BitVec::from_bit_str("10101010").unwrap();
        let b = BitVec::from_bit_str("11001100").unwrap();
        let x = a.xor(&b).unwrap();
        assert_eq!(x, BitVec::from_bit_str("01100110").unwrap());
        assert_eq!(a.hamming_distance(&b).unwrap(), 4);
        let c = BitVec::zeros(9);
        assert!(a.xor(&c).is_err());
    }

    #[test]
    fn from_bit_str_rejects_garbage() {
        assert!(BitVec::from_bit_str("01x1").is_err());
        assert_eq!(BitVec::from_bit_str("0110").unwrap().count_ones(), 2);
    }

    #[test]
    fn slice_and_copy_bits() {
        let v = BitVec::from_bit_str("0011010111").unwrap();
        let s = v.slice(2, 7);
        assert_eq!(s, BitVec::from_bit_str("11010").unwrap());
        let mut dst = BitVec::zeros(10);
        dst.copy_bits_from(3, &s);
        assert_eq!(dst, BitVec::from_bit_str("0001101000").unwrap());
    }

    #[test]
    fn bytes_round_trip() {
        let v = BitVec::from_bit_str("101100111000110").unwrap();
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), 2);
        let back = BitVec::from_bytes(&bytes, v.len());
        assert_eq!(v, back);
    }

    #[test]
    fn push_and_extend() {
        let mut v = BitVec::zeros(0);
        assert!(v.is_empty());
        v.push(true);
        v.push(false);
        v.push(true);
        assert_eq!(v.len(), 3);
        assert_eq!(v.count_ones(), 2);
        let mut w = BitVec::from_bit_str("11").unwrap();
        w.extend_from(&v);
        assert_eq!(w, BitVec::from_bit_str("11101").unwrap());
        w.extend([false, false]);
        assert_eq!(w.len(), 7);
    }

    #[test]
    fn collect_from_iterator() {
        let v: BitVec = [true, false, true, true].into_iter().collect();
        assert_eq!(v, BitVec::from_bit_str("1011").unwrap());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(8);
        let _ = v.get(8);
    }

    #[test]
    fn from_words_masks_the_tail() {
        let v = BitVec::from_words(vec![u64::MAX, u64::MAX], 70);
        assert_eq!(v.len(), 70);
        assert_eq!(v.count_ones(), 70);
        assert_eq!(v.words(), &[u64::MAX, 0x3F]);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn from_words_rejects_short_storage() {
        let _ = BitVec::from_words(vec![0], 65);
    }

    #[test]
    fn words_mut_and_clear_tail() {
        let mut v = BitVec::zeros(68);
        v.words_mut()[0] = u64::MAX;
        v.words_mut()[1] = u64::MAX;
        v.clear_tail();
        assert_eq!(v.count_ones(), 68);
    }

    #[test]
    fn word_at_reads_unaligned_and_pads_with_zeros() {
        let v = BitVec::from_bits((0..100).map(|i| i % 3 == 0));
        for start in [0, 1, 17, 63, 64, 65, 90, 99] {
            let w = v.word_at(start);
            for j in 0..64 {
                let expected = start + j < v.len() && v.get(start + j);
                assert_eq!((w >> j) & 1 == 1, expected, "start {start} bit {j}");
            }
        }
    }

    #[test]
    fn count_ones_range_matches_slice() {
        let v = BitVec::from_bits((0..300).map(|i| i % 5 < 2));
        for (start, end) in [(0, 300), (0, 0), (5, 5), (3, 64), (3, 65), (64, 128), (63, 129), (250, 300)] {
            assert_eq!(
                v.count_ones_range(start, end),
                v.slice(start, end).count_ones(),
                "range {start}..{end}"
            );
        }
    }

    #[test]
    fn transitions_counts_run_boundaries() {
        assert_eq!(BitVec::zeros(0).transitions(), 0);
        assert_eq!(BitVec::zeros(1).transitions(), 0);
        assert_eq!(BitVec::from_bit_str("01").unwrap().transitions(), 1);
        assert_eq!(BitVec::ones(200).transitions(), 0);
        // Alternating stream: every adjacent pair differs.
        let alt = BitVec::from_bits((0..129).map(|i| i % 2 == 0));
        assert_eq!(alt.transitions(), 128);
    }

    #[test]
    fn extract_bytes_matches_slice_to_bytes() {
        let v = BitVec::from_bits((0..300).map(|i| i % 7 < 3));
        for (start, end) in [(0, 300), (0, 64), (3, 131), (65, 300), (128, 192), (7, 8), (5, 5)] {
            assert_eq!(
                v.extract_bytes(start, end),
                v.slice(start, end).to_bytes(),
                "range {start}..{end}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_bytes_round_trip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let v = BitVec::from_bits(bits.clone());
            let back = BitVec::from_bytes(&v.to_bytes(), v.len());
            prop_assert_eq!(v.clone(), back);
            prop_assert_eq!(v.count_ones(), bits.iter().filter(|b| **b).count());
        }

        #[test]
        fn prop_xor_is_involutive(bits_a in proptest::collection::vec(any::<bool>(), 1..200),
                                  seed in any::<u64>()) {
            let a = BitVec::from_bits(bits_a.clone());
            // Derive a second vector of the same length deterministically.
            let b = BitVec::from_bits(
                bits_a.iter().enumerate().map(|(i, x)| *x ^ ((seed >> (i % 64)) & 1 == 1)),
            );
            let x = a.xor(&b).unwrap();
            prop_assert_eq!(x.xor(&b).unwrap(), a.clone());
            prop_assert_eq!(a.hamming_distance(&b).unwrap(), x.count_ones());
        }

        #[test]
        fn prop_slice_concat_identity(bits in proptest::collection::vec(any::<bool>(), 1..200),
                                      cut in 0usize..200) {
            let v = BitVec::from_bits(bits);
            let cut = cut % (v.len() + 1);
            let mut left = v.slice(0, cut);
            let right = v.slice(cut, v.len());
            left.extend_from(&right);
            prop_assert_eq!(left, v);
        }

        #[test]
        fn prop_extract_bytes_equals_slice_to_bytes(
            bits in proptest::collection::vec(any::<bool>(), 0..400),
            a in 0usize..400,
            b in 0usize..400,
        ) {
            let v = BitVec::from_bits(bits);
            let (a, b) = (a % (v.len() + 1), b % (v.len() + 1));
            let (start, end) = (a.min(b), a.max(b));
            prop_assert_eq!(v.extract_bytes(start, end), v.slice(start, end).to_bytes());
        }

        #[test]
        fn prop_word_scans_match_per_bit_walks(
            bits in proptest::collection::vec(any::<bool>(), 0..400),
            a in 0usize..400,
            b in 0usize..400,
        ) {
            let v = BitVec::from_bits(bits.clone());
            let (a, b) = (a % (v.len() + 1), b % (v.len() + 1));
            let (start, end) = (a.min(b), a.max(b));
            prop_assert_eq!(
                v.count_ones_range(start, end),
                bits[start..end].iter().filter(|x| **x).count()
            );
            let by_bit = bits.windows(2).filter(|w| w[0] != w[1]).count();
            prop_assert_eq!(v.transitions(), by_bit);
            if !bits.is_empty() {
                let w = v.word_at(start.min(v.len() - 1));
                let i0 = start.min(v.len() - 1);
                for j in 0..64 {
                    let expected = i0 + j < v.len() && bits[i0 + j];
                    prop_assert_eq!((w >> j) & 1 == 1, expected);
                }
            }
        }

        #[test]
        fn prop_copy_bits_from_matches_per_bit_copy(
            dst_bits in proptest::collection::vec(any::<bool>(), 1..300),
            src_bits in proptest::collection::vec(any::<bool>(), 0..300),
            offset in 0usize..300,
        ) {
            let src = BitVec::from_bits(src_bits.clone());
            let dst = BitVec::from_bits(dst_bits.clone());
            prop_assume!(src.len() <= dst.len());
            let offset = offset % (dst.len() - src.len() + 1);
            let mut fast = dst.clone();
            fast.copy_bits_from(offset, &src);
            let mut reference = dst_bits;
            for (i, b) in src_bits.iter().enumerate() {
                reference[offset + i] = *b;
            }
            prop_assert_eq!(fast, BitVec::from_bits(reference));
        }
    }
}
