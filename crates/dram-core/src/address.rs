//! Typed DRAM address components.
//!
//! Newtypes give static distinction between channels, ranks, bank groups,
//! banks, subarrays, rows, columns, and the four-row *segments* that QUAC
//! operates on. Each component is a thin wrapper over `usize` with the usual
//! conversions and ordering.

use crate::{DramGeometry, DramCoreError, ROWS_PER_SEGMENT, CACHE_BLOCK_BITS};
use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident, $label:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(usize);

        impl $name {
            /// Creates a new address component from a raw index.
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                Self(v)
            }
        }

        impl From<$name> for usize {
            fn from(v: $name) -> usize {
                v.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $label, self.0)
            }
        }
    };
}

addr_newtype!(
    /// A memory-channel index.
    ChannelAddr,
    "CH"
);
addr_newtype!(
    /// A rank index within a channel.
    RankAddr,
    "RA"
);
addr_newtype!(
    /// A bank-group index within a rank (DDR4 has four).
    BankGroupAddr,
    "BG"
);
addr_newtype!(
    /// A bank index within a bank group.
    BankAddr,
    "BA"
);
addr_newtype!(
    /// A subarray index within a bank.
    SubarrayAddr,
    "SA"
);
addr_newtype!(
    /// A row index within a bank.
    RowAddr,
    "R"
);
addr_newtype!(
    /// A column index within a row, addressing one cache-block burst.
    ColumnAddr,
    "C"
);
addr_newtype!(
    /// A cache-block index within a row (identical granularity to
    /// [`ColumnAddr`] in this model, kept distinct for clarity).
    CacheBlockAddr,
    "CB"
);

impl RowAddr {
    /// Returns the two least-significant bits of the row address, which
    /// select one of the four local wordlines within a segment (Section 4.1).
    pub fn lwl_select(self) -> u8 {
        (self.0 & 0b11) as u8
    }

    /// Returns `true` if `self` and `other` lie in the same segment and their
    /// two least-significant bits are inverted (e.g. rows 0 and 3, or 1 and
    /// 2), the necessary condition for a QUAC-triggering ACT pair
    /// (Section 4).
    pub fn is_quac_pair(self, other: RowAddr) -> bool {
        Segment::containing(self) == Segment::containing(other)
            && self.lwl_select() ^ other.lwl_select() == 0b11
    }

    /// Returns the subarray this row belongs to under the given geometry.
    pub fn subarray(self, geom: &DramGeometry) -> SubarrayAddr {
        SubarrayAddr::new(self.0 / geom.rows_per_subarray)
    }
}

/// A DRAM segment: four consecutive rows whose addresses differ only in the
/// two least-significant bits (Section 4). Segment *k* covers rows
/// `4k .. 4k+3`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Segment(usize);

impl Segment {
    /// Creates the segment with the given index.
    pub const fn new(index: usize) -> Self {
        Segment(index)
    }

    /// Returns the segment containing the given row.
    pub const fn containing(row: RowAddr) -> Self {
        Segment(row.index() / ROWS_PER_SEGMENT)
    }

    /// Returns the segment index.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Returns the first (lowest-addressed) row of the segment.
    pub const fn base_row(self) -> RowAddr {
        RowAddr::new(self.0 * ROWS_PER_SEGMENT)
    }

    /// Returns all four rows of the segment in ascending address order.
    pub fn rows(self) -> [RowAddr; ROWS_PER_SEGMENT] {
        let base = self.0 * ROWS_PER_SEGMENT;
        [
            RowAddr::new(base),
            RowAddr::new(base + 1),
            RowAddr::new(base + 2),
            RowAddr::new(base + 3),
        ]
    }

    /// Returns the two (first, second) ACT targets that trigger QUAC on this
    /// segment following Algorithm 1: the first and the fourth rows.
    pub fn quac_act_pair(self) -> (RowAddr, RowAddr) {
        let rows = self.rows();
        (rows[0], rows[3])
    }

    /// Returns the subarray this segment belongs to.
    pub fn subarray(self, geom: &DramGeometry) -> SubarrayAddr {
        self.base_row().subarray(geom)
    }

    /// Returns `true` if the segment index is valid for the geometry.
    pub fn is_valid(self, geom: &DramGeometry) -> bool {
        self.0 < geom.segments_per_bank()
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SEG{}", self.0)
    }
}

/// A fully-qualified DRAM location down to bank granularity, with optional
/// row and column. This is the address carried by DDR4 commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DramAddress {
    /// Channel component.
    pub channel: ChannelAddr,
    /// Rank component.
    pub rank: RankAddr,
    /// Bank-group component.
    pub bank_group: BankGroupAddr,
    /// Bank component.
    pub bank: BankAddr,
    /// Row component (meaningful for ACT).
    pub row: RowAddr,
    /// Column component (meaningful for RD/WR).
    pub column: ColumnAddr,
}

impl DramAddress {
    /// Creates an address pointing at a bank (row and column zero).
    pub fn bank(
        channel: ChannelAddr,
        rank: RankAddr,
        bank_group: BankGroupAddr,
        bank: BankAddr,
    ) -> Self {
        DramAddress { channel, rank, bank_group, bank, row: RowAddr::new(0), column: ColumnAddr::new(0) }
    }

    /// Returns a copy of this address with the row replaced.
    pub fn with_row(mut self, row: RowAddr) -> Self {
        self.row = row;
        self
    }

    /// Returns a copy of this address with the column replaced.
    pub fn with_column(mut self, column: ColumnAddr) -> Self {
        self.column = column;
        self
    }

    /// Returns a flat bank identifier within a rank:
    /// `bank_group * banks_per_group + bank`.
    pub fn flat_bank(&self, geom: &DramGeometry) -> usize {
        self.bank_group.index() * geom.banks_per_group + self.bank.index()
    }

    /// Validates that all components are in range for the geometry.
    pub fn validate(&self, geom: &DramGeometry) -> Result<(), DramCoreError> {
        let checks: [(&'static str, usize, usize); 6] = [
            ("channel", self.channel.index(), geom.channels),
            ("rank", self.rank.index(), geom.ranks),
            ("bank group", self.bank_group.index(), geom.bank_groups),
            ("bank", self.bank.index(), geom.banks_per_group),
            ("row", self.row.index(), geom.rows_per_bank()),
            ("column", self.column.index(), geom.columns_per_row()),
        ];
        for (component, value, bound) in checks {
            if value >= bound {
                return Err(DramCoreError::AddressOutOfRange { component, value, bound });
            }
        }
        Ok(())
    }
}

impl fmt::Display for DramAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}/{}/{}",
            self.channel, self.rank, self.bank_group, self.bank, self.row, self.column
        )
    }
}

/// Returns the bit range `[start, end)` within a row covered by the given
/// cache block.
pub fn cache_block_bit_range(cb: CacheBlockAddr) -> std::ops::Range<usize> {
    let start = cb.index() * CACHE_BLOCK_BITS;
    start..start + CACHE_BLOCK_BITS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_row_mapping_round_trips() {
        for row in 0..64usize {
            let seg = Segment::containing(RowAddr::new(row));
            assert_eq!(seg.index(), row / 4);
            assert!(seg.rows().contains(&RowAddr::new(row)));
        }
    }

    #[test]
    fn quac_pair_requires_inverted_lsbs_in_same_segment() {
        // Rows 0 and 3 (00 and 11): valid.
        assert!(RowAddr::new(0).is_quac_pair(RowAddr::new(3)));
        // Rows 1 and 2 (01 and 10): valid.
        assert!(RowAddr::new(1).is_quac_pair(RowAddr::new(2)));
        // Rows 0 and 1: not inverted.
        assert!(!RowAddr::new(0).is_quac_pair(RowAddr::new(1)));
        // Rows 0 and 2: not inverted.
        assert!(!RowAddr::new(0).is_quac_pair(RowAddr::new(2)));
        // Rows 3 and 4: inverted bits but different segments.
        assert!(!RowAddr::new(3).is_quac_pair(RowAddr::new(4)));
        // Rows 4 and 7: next segment, valid.
        assert!(RowAddr::new(4).is_quac_pair(RowAddr::new(7)));
    }

    #[test]
    fn quac_act_pair_is_first_and_fourth_row() {
        let seg = Segment::new(10);
        let (a, b) = seg.quac_act_pair();
        assert_eq!(a, RowAddr::new(40));
        assert_eq!(b, RowAddr::new(43));
        assert!(a.is_quac_pair(b));
    }

    #[test]
    fn address_validation_catches_out_of_range_components() {
        let geom = DramGeometry::tiny_test();
        let ok = DramAddress::bank(
            ChannelAddr::new(0),
            RankAddr::new(0),
            BankGroupAddr::new(1),
            BankAddr::new(1),
        )
        .with_row(RowAddr::new(255))
        .with_column(ColumnAddr::new(7));
        ok.validate(&geom).unwrap();

        let bad_row = ok.with_row(RowAddr::new(256));
        assert!(matches!(
            bad_row.validate(&geom),
            Err(DramCoreError::AddressOutOfRange { component: "row", .. })
        ));
        let bad_bg = DramAddress::bank(
            ChannelAddr::new(0),
            RankAddr::new(0),
            BankGroupAddr::new(2),
            BankAddr::new(0),
        );
        assert!(bad_bg.validate(&geom).is_err());
    }

    #[test]
    fn flat_bank_enumerates_all_banks_uniquely() {
        let geom = DramGeometry::ddr4_4gb_x8_module();
        let mut seen = std::collections::HashSet::new();
        for bg in 0..geom.bank_groups {
            for b in 0..geom.banks_per_group {
                let addr = DramAddress::bank(
                    ChannelAddr::new(0),
                    RankAddr::new(0),
                    BankGroupAddr::new(bg),
                    BankAddr::new(b),
                );
                seen.insert(addr.flat_bank(&geom));
            }
        }
        assert_eq!(seen.len(), geom.banks_per_rank());
        assert_eq!(*seen.iter().max().unwrap(), geom.banks_per_rank() - 1);
    }

    #[test]
    fn subarray_assignment_uses_geometry() {
        let geom = DramGeometry::tiny_test();
        assert_eq!(RowAddr::new(0).subarray(&geom), SubarrayAddr::new(0));
        assert_eq!(RowAddr::new(63).subarray(&geom), SubarrayAddr::new(0));
        assert_eq!(RowAddr::new(64).subarray(&geom), SubarrayAddr::new(1));
        let seg = Segment::containing(RowAddr::new(65));
        assert_eq!(seg.subarray(&geom), SubarrayAddr::new(1));
    }

    #[test]
    fn cache_block_bit_range_covers_512_bits() {
        let r = cache_block_bit_range(CacheBlockAddr::new(3));
        assert_eq!(r.start, 1536);
        assert_eq!(r.end, 2048);
    }

    #[test]
    fn display_formats_are_readable() {
        let addr = DramAddress::bank(
            ChannelAddr::new(1),
            RankAddr::new(0),
            BankGroupAddr::new(2),
            BankAddr::new(3),
        )
        .with_row(RowAddr::new(44));
        let s = format!("{addr}");
        assert!(s.contains("CH1"));
        assert!(s.contains("BG2"));
        assert!(s.contains("R44"));
        assert_eq!(format!("{}", Segment::new(7)), "SEG7");
    }
}
