//! Ready-made SoftMC experiments mirroring the paper's methodology.

use crate::{HostController, Program};
use qt_dram_core::{BitVec, ColumnAddr, DataPattern, RowAddr, Segment};
use qt_dram_sim::{BankRef, DramSimError};

/// Algorithm 1 of the paper: initialise a segment with a data pattern,
/// perform a QUAC operation with violated tRAS/tRP, then read back every
/// sense amplifier with nominal timing. Returns one bit per bitline.
pub fn quac_randomness_test(
    host: &mut HostController,
    bank: BankRef,
    segment: Segment,
    pattern: DataPattern,
) -> Result<BitVec, DramSimError> {
    // Step (i): write the data pattern into all rows of the segment.
    host.module_mut().fill_segment(bank, segment, pattern)?;

    // Steps (ii)-(iii): QUAC with violated timings, then read each sense
    // amplifier while obeying nominal column timings.
    let timing = *host.module().timing();
    let columns = host.module().geometry().columns_per_row();
    let quac = Program::quac_sequence(segment, &timing);
    host.run(bank, &quac)?;
    let read = crate::ProgramBuilder::new()
        .read_all_columns(columns, timing.t_ccd_l)
        .wait_ns(timing.t_ras)
        .precharge()
        .wait_ns(timing.t_rp)
        .build();
    let result = host.run(bank, &read)?;
    Ok(result.concatenated_reads())
}

/// The Section 4.2 verification experiment: QUAC a segment, write a new
/// pattern into the row buffer while all four rows are open, precharge, and
/// read each row individually with nominal timing. Returns the data read from
/// each of the four rows; the experiment succeeds when all four match the
/// written pattern.
pub fn quac_four_row_write_verification(
    host: &mut HostController,
    bank: BankRef,
    segment: Segment,
    marker_block: &BitVec,
) -> Result<[BitVec; 4], DramSimError> {
    let timing = *host.module().timing();
    // Initialise with a known pattern, then QUAC.
    host.module_mut().fill_segment(bank, segment, DataPattern::best_average())?;
    host.run(bank, &Program::quac_sequence(segment, &timing))?;

    // Write the marker into column 0 while the four rows are open.
    let write = crate::ProgramBuilder::new()
        .write(ColumnAddr::new(0), marker_block.clone())
        .wait_ns(timing.t_ras)
        .precharge()
        .wait_ns(timing.t_rp)
        .build();
    host.run(bank, &write)?;

    // Read each row back individually with nominal timing.
    let rows = segment.rows();
    let mut out: Vec<BitVec> = Vec::with_capacity(4);
    for row in rows {
        let data = host.module_mut().read_row(bank, row)?;
        out.push(data.slice(0, marker_block.len()));
    }
    Ok([out[0].clone(), out[1].clone(), out[2].clone(), out[3].clone()])
}

/// Collects `iterations` bits from every sense amplifier of a segment by
/// repeating Algorithm 1 (Section 6.2): the result is one bitstream per
/// bitline, stored as `iterations` row-buffer snapshots.
pub fn collect_quac_bitstreams(
    host: &mut HostController,
    bank: BankRef,
    segment: Segment,
    pattern: DataPattern,
    iterations: usize,
) -> Result<Vec<BitVec>, DramSimError> {
    let mut snapshots = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        snapshots.push(quac_randomness_test(host, bank, segment, pattern)?);
    }
    Ok(snapshots)
}

/// Extracts the per-bitline bitstream from a set of row-buffer snapshots.
pub fn bitline_stream(snapshots: &[BitVec], bitline: usize) -> BitVec {
    BitVec::from_bits(snapshots.iter().map(|s| s.get(bitline)))
}

/// Reduced-tRCD characterisation for one cache block (the D-RaNGe-Enhanced
/// methodology of Section 7.4.1): initialise the row with all zeros, read the
/// block with reduced tRCD `iterations` times, and return the per-iteration
/// blocks.
pub fn reduced_trcd_characterisation(
    host: &mut HostController,
    bank: BankRef,
    row: RowAddr,
    column: ColumnAddr,
    trcd_ns: f64,
    iterations: usize,
) -> Result<Vec<BitVec>, DramSimError> {
    let row_bits = host.module().geometry().row_bits;
    host.module_mut().fill_row(bank, row, &BitVec::zeros(row_bits))?;
    let timing = *host.module().timing();
    let program = Program::reduced_trcd_read(row, column, trcd_ns, &timing);
    let mut out = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let result = host.run(bank, &program)?;
        out.push(result.read_data[0].clone());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dram_analog::entropy::bitstream_entropy;
    use qt_dram_core::{DramGeometry, CACHE_BLOCK_BITS};
    use qt_dram_sim::DramModuleSim;

    fn host() -> HostController {
        HostController::new(DramModuleSim::with_seed(DramGeometry::tiny_test(), 21))
    }

    #[test]
    fn algorithm_1_produces_mixed_output_for_conflicting_pattern() {
        let mut h = host();
        let bank = h.module().bank_ref(0, 0);
        let bits =
            quac_randomness_test(&mut h, bank, Segment::new(3), DataPattern::best_average()).unwrap();
        let ones = bits.count_ones();
        assert!(ones > 0 && ones < bits.len(), "ones {ones} of {}", bits.len());
    }

    #[test]
    fn four_row_write_verification_updates_every_row() {
        let mut h = host();
        let bank = h.module().bank_ref(1, 1);
        let marker = BitVec::from_bits((0..CACHE_BLOCK_BITS).map(|i| i % 7 == 0));
        let rows = quac_four_row_write_verification(&mut h, bank, Segment::new(2), &marker).unwrap();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row, &marker, "row {i} does not hold the marker");
        }
    }

    #[test]
    fn repeated_quac_produces_entropy_on_some_bitlines() {
        let mut h = host();
        let bank = h.module().bank_ref(0, 1);
        let snapshots =
            collect_quac_bitstreams(&mut h, bank, Segment::new(5), DataPattern::best_average(), 40)
                .unwrap();
        assert_eq!(snapshots.len(), 40);
        // At least one bitline should show non-trivial entropy across trials.
        let row_bits = h.module().geometry().row_bits;
        let max_entropy = (0..row_bits)
            .map(|b| bitstream_entropy(&bitline_stream(&snapshots, b)))
            .fold(0.0f64, f64::max);
        assert!(max_entropy > 0.5, "max bitline entropy {max_entropy}");
    }

    #[test]
    fn reduced_trcd_characterisation_returns_blocks() {
        let mut h = host();
        let bank = h.module().bank_ref(1, 0);
        let blocks = reduced_trcd_characterisation(
            &mut h,
            bank,
            RowAddr::new(8),
            ColumnAddr::new(0),
            4.0,
            10,
        )
        .unwrap();
        assert_eq!(blocks.len(), 10);
        assert!(blocks.iter().all(|b| b.len() == CACHE_BLOCK_BITS));
    }
}
