//! # qt-softmc
//!
//! A SoftMC-like programmable host memory controller (Hassan et al.,
//! HPCA 2017): the experimental infrastructure the paper uses to issue DDR4
//! command sequences with precise — and deliberately violated — timings
//! (Section 6.1.1).
//!
//! A [`Program`] is an ordered list of timed DDR4 commands built with
//! [`ProgramBuilder`]; the [`HostController`] executes it against a simulated
//! module ([`qt_dram_sim::DramModuleSim`]) and returns every cache block read
//! plus a log of the timing violations the program committed — exactly the
//! picture an experimenter gets from the FPGA prototype.
//!
//! ## Example: Algorithm 1
//!
//! ```
//! use qt_softmc::{HostController, experiments};
//! use qt_dram_core::{DramGeometry, DataPattern, Segment};
//! use qt_dram_sim::DramModuleSim;
//!
//! let sim = DramModuleSim::with_seed(DramGeometry::tiny_test(), 3);
//! let mut host = HostController::new(sim);
//! let bank = host.module().bank_ref(0, 0);
//! let bits = experiments::quac_randomness_test(
//!     &mut host, bank, Segment::new(1), DataPattern::best_average()).unwrap();
//! assert_eq!(bits.len(), host.module().geometry().row_bits);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod program;

pub use program::{Program, ProgramBuilder, ProgramStep, TimingViolation};

use qt_dram_core::BitVec;
use qt_dram_sim::{BankRef, DramModuleSim, DramSimError};

/// Result of running one program: the data returned by every read, in
/// program order, plus the timing violations the schedule committed.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionResult {
    /// One entry per `RD` step, in issue order.
    pub read_data: Vec<BitVec>,
    /// Every DDR4 timing violation detected in the schedule.
    pub violations: Vec<TimingViolation>,
    /// Total duration of the program in nanoseconds.
    pub duration_ns: f64,
}

impl ExecutionResult {
    /// Concatenates all read bursts into one bitstream.
    pub fn concatenated_reads(&self) -> BitVec {
        let mut out = BitVec::zeros(0);
        for block in &self.read_data {
            out.extend_from(block);
        }
        out
    }
}

/// The programmable host controller driving one DRAM module.
#[derive(Debug)]
pub struct HostController {
    module: DramModuleSim,
}

impl HostController {
    /// Wraps a simulated module for experimentation.
    pub fn new(module: DramModuleSim) -> Self {
        HostController { module }
    }

    /// Immutable access to the module under test.
    pub fn module(&self) -> &DramModuleSim {
        &self.module
    }

    /// Mutable access to the module under test (for state setup between
    /// programs).
    pub fn module_mut(&mut self) -> &mut DramModuleSim {
        &mut self.module
    }

    /// Consumes the controller and returns the module.
    pub fn into_module(self) -> DramModuleSim {
        self.module
    }

    /// Executes a program against one bank, starting at the bank's current
    /// local time.
    ///
    /// # Errors
    ///
    /// Returns the underlying simulator error if a step is ill-formed (e.g. a
    /// column command with no open row).
    pub fn run(&mut self, bank: BankRef, program: &Program) -> Result<ExecutionResult, DramSimError> {
        let base = self.module.bank_time(bank)?;
        let mut read_data = Vec::new();
        let mut end = base;
        for timed in program.steps() {
            let at = base + timed.offset_ns;
            end = end.max(at);
            match &timed.step {
                ProgramStep::Activate { row } => {
                    self.module.activate_at(bank, *row, at)?;
                }
                ProgramStep::Precharge => {
                    self.module.precharge_at(bank, at)?;
                }
                ProgramStep::Read { column } => {
                    let (data, _) = self.module.read_at(bank, *column, at)?;
                    read_data.push(data);
                }
                ProgramStep::Write { column, data } => {
                    self.module.write_at(bank, *column, data, at)?;
                }
                ProgramStep::Wait => {}
            }
        }
        self.module.advance_bank_time(bank, end)?;
        Ok(ExecutionResult {
            read_data,
            violations: program.violations(self.module.timing()),
            duration_ns: end - base,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_dram_core::{ColumnAddr, DataPattern, DramGeometry, RowAddr, Segment, TimingParams};

    fn host() -> HostController {
        HostController::new(DramModuleSim::with_seed(DramGeometry::tiny_test(), 5))
    }

    #[test]
    fn nominal_program_reads_back_written_data() {
        let mut h = host();
        let bank = h.module().bank_ref(0, 0);
        let row = RowAddr::new(4);
        let data = BitVec::from_bits((0..h.module().geometry().row_bits).map(|i| i % 2 == 0));
        h.module_mut().fill_row(bank, row, &data).unwrap();

        let t = TimingParams::ddr4_2400();
        let program = ProgramBuilder::new()
            .activate(row)
            .wait_ns(t.t_rcd)
            .read(ColumnAddr::new(0))
            .wait_ns(t.t_ras)
            .precharge()
            .build();
        let result = h.run(bank, &program).unwrap();
        assert_eq!(result.read_data.len(), 1);
        assert_eq!(result.read_data[0], data.slice(0, 512));
        assert!(result.violations.is_empty(), "violations: {:?}", result.violations);
    }

    #[test]
    fn quac_program_reports_t_ras_and_t_rp_violations() {
        let mut h = host();
        let bank = h.module().bank_ref(0, 1);
        let seg = Segment::new(2);
        h.module_mut().fill_segment(bank, seg, DataPattern::best_average()).unwrap();
        let program = Program::quac_sequence(seg, h.module().timing());
        let result = h.run(bank, &program).unwrap();
        assert!(result.violations.iter().any(|v| matches!(v, TimingViolation::TRas { .. })));
        assert!(result.violations.iter().any(|v| matches!(v, TimingViolation::TRp { .. })));
        // The module now has all four rows open.
        assert_eq!(h.module().bank(bank).unwrap().open_rows().len(), 4);
    }

    #[test]
    fn concatenated_reads_joins_blocks() {
        let r = ExecutionResult {
            read_data: vec![BitVec::ones(8), BitVec::zeros(8)],
            violations: vec![],
            duration_ns: 1.0,
        };
        let all = r.concatenated_reads();
        assert_eq!(all.len(), 16);
        assert_eq!(all.count_ones(), 8);
    }
}
