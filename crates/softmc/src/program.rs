//! SoftMC-style command programs: timed DDR4 command sequences with
//! fine-grained (violable) inter-command delays.

use qt_dram_core::{BitVec, ColumnAddr, RowAddr, Segment, TimingParams};

/// One step of a command program.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramStep {
    /// Activate a row.
    Activate {
        /// The row to activate.
        row: RowAddr,
    },
    /// Precharge the bank.
    Precharge,
    /// Read one cache block from the open row buffer.
    Read {
        /// The column to read.
        column: ColumnAddr,
    },
    /// Write one cache block into the row buffer (and all open rows).
    Write {
        /// The column to write.
        column: ColumnAddr,
        /// The 512-bit block to write.
        data: BitVec,
    },
    /// Explicit delay marker (no command on the bus).
    Wait,
}

/// A program step stamped with its offset from the program start.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedStep {
    /// Offset from the start of the program, in nanoseconds.
    pub offset_ns: f64,
    /// The step.
    pub step: ProgramStep,
}

/// A DDR4 timing violation committed by a program.
#[derive(Debug, Clone, PartialEq)]
pub enum TimingViolation {
    /// A precharge was issued before tRAS elapsed after an activation.
    TRas {
        /// Observed ACT→PRE gap in nanoseconds.
        gap_ns: f64,
        /// Required minimum in nanoseconds.
        required_ns: f64,
    },
    /// An activation was issued before tRP elapsed after a precharge.
    TRp {
        /// Observed PRE→ACT gap in nanoseconds.
        gap_ns: f64,
        /// Required minimum in nanoseconds.
        required_ns: f64,
    },
    /// A column command was issued before tRCD elapsed after an activation.
    TRcd {
        /// Observed ACT→RD/WR gap in nanoseconds.
        gap_ns: f64,
        /// Required minimum in nanoseconds.
        required_ns: f64,
    },
}

/// An ordered, timed DDR4 command sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    steps: Vec<TimedStep>,
}

impl Program {
    /// The timed steps in issue order.
    pub fn steps(&self) -> &[TimedStep] {
        &self.steps
    }

    /// Total programmed duration (offset of the last step).
    pub fn duration_ns(&self) -> f64 {
        self.steps.last().map(|s| s.offset_ns).unwrap_or(0.0)
    }

    /// Number of command-bus commands (waits excluded).
    pub fn command_count(&self) -> usize {
        self.steps.iter().filter(|s| !matches!(s.step, ProgramStep::Wait)).count()
    }

    /// Scans the schedule for DDR4 timing violations against the given
    /// parameters (the defining feature of SoftMC: the host lets you commit
    /// them, but an experimenter wants them reported).
    pub fn violations(&self, timing: &TimingParams) -> Vec<TimingViolation> {
        let mut out = Vec::new();
        let mut last_act: Option<f64> = None;
        let mut last_pre: Option<f64> = None;
        for s in &self.steps {
            match s.step {
                ProgramStep::Activate { .. } => {
                    if let Some(pre) = last_pre {
                        let gap = s.offset_ns - pre;
                        if timing.violates_t_rp(gap + 1e-6) {
                            out.push(TimingViolation::TRp { gap_ns: gap, required_ns: timing.t_rp });
                        }
                    }
                    last_act = Some(s.offset_ns);
                    last_pre = None;
                }
                ProgramStep::Precharge => {
                    if let Some(act) = last_act {
                        let gap = s.offset_ns - act;
                        if timing.violates_t_ras(gap + 1e-6) {
                            out.push(TimingViolation::TRas { gap_ns: gap, required_ns: timing.t_ras });
                        }
                    }
                    last_pre = Some(s.offset_ns);
                }
                ProgramStep::Read { .. } | ProgramStep::Write { .. } => {
                    if let Some(act) = last_act {
                        let gap = s.offset_ns - act;
                        if timing.violates_t_rcd(gap + 1e-6) {
                            out.push(TimingViolation::TRcd { gap_ns: gap, required_ns: timing.t_rcd });
                        }
                    }
                }
                ProgramStep::Wait => {}
            }
        }
        out
    }

    /// The QUAC command sequence of Algorithm 1: `ACT Row0 → (2.5 ns) →
    /// PRE → (2.5 ns) → ACT Row3`, followed by a tRCD wait so the sense
    /// amplifiers are readable.
    pub fn quac_sequence(segment: Segment, timing: &TimingParams) -> Program {
        let gap = TimingParams::quac_violated_gap_ns();
        let (first, last) = segment.quac_act_pair();
        ProgramBuilder::new()
            .activate(first)
            .wait_ns(gap)
            .precharge()
            .wait_ns(gap)
            .activate(last)
            .wait_ns(timing.t_rcd)
            .build()
    }

    /// The in-DRAM copy sequence (ComputeDRAM-style RowClone): `ACT src →
    /// PRE → ACT dst` with the same violated gaps.
    pub fn rowclone_sequence(source: RowAddr, destination: RowAddr, timing: &TimingParams) -> Program {
        let gap = TimingParams::quac_violated_gap_ns();
        ProgramBuilder::new()
            .activate(source)
            .wait_ns(gap)
            .precharge()
            .wait_ns(gap)
            .activate(destination)
            .wait_ns(timing.t_ras)
            .precharge()
            .wait_ns(timing.t_rp)
            .build()
    }

    /// A reduced-tRCD read (the D-RaNGe entropy harvest): activate, read one
    /// column after `trcd_ns` (below nominal), then clean up.
    pub fn reduced_trcd_read(row: RowAddr, column: ColumnAddr, trcd_ns: f64, timing: &TimingParams) -> Program {
        ProgramBuilder::new()
            .activate(row)
            .wait_ns(trcd_ns)
            .read(column)
            .wait_ns(timing.t_ras)
            .precharge()
            .wait_ns(timing.t_rp)
            .build()
    }

    /// A reduced-tRP activation (the Talukder+ entropy harvest): a nominal
    /// activate/precharge of the row followed by a premature re-activation.
    pub fn reduced_trp_activate(row: RowAddr, trp_ns: f64, timing: &TimingParams) -> Program {
        ProgramBuilder::new()
            .activate(row)
            .wait_ns(timing.t_ras)
            .precharge()
            .wait_ns(trp_ns)
            .activate(row)
            .wait_ns(timing.t_rcd)
            .build()
    }
}

/// Builder for [`Program`]: each call appends a step after the current
/// cursor; `wait_ns` moves the cursor without issuing a command.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    cursor_ns: f64,
    steps: Vec<TimedStep>,
}

impl ProgramBuilder {
    /// Creates an empty builder with the cursor at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an `ACT` at the current cursor.
    pub fn activate(mut self, row: RowAddr) -> Self {
        self.steps.push(TimedStep { offset_ns: self.cursor_ns, step: ProgramStep::Activate { row } });
        self
    }

    /// Appends a `PRE` at the current cursor.
    pub fn precharge(mut self) -> Self {
        self.steps.push(TimedStep { offset_ns: self.cursor_ns, step: ProgramStep::Precharge });
        self
    }

    /// Appends a `RD` at the current cursor.
    pub fn read(mut self, column: ColumnAddr) -> Self {
        self.steps.push(TimedStep { offset_ns: self.cursor_ns, step: ProgramStep::Read { column } });
        self
    }

    /// Appends a `RD` for every column of a row, spaced by `t_ccd_l`.
    pub fn read_all_columns(mut self, columns: usize, t_ccd_l: f64) -> Self {
        for c in 0..columns {
            self.steps.push(TimedStep {
                offset_ns: self.cursor_ns,
                step: ProgramStep::Read { column: ColumnAddr::new(c) },
            });
            self.cursor_ns += t_ccd_l;
        }
        self
    }

    /// Appends a `WR` at the current cursor.
    pub fn write(mut self, column: ColumnAddr, data: BitVec) -> Self {
        self.steps.push(TimedStep { offset_ns: self.cursor_ns, step: ProgramStep::Write { column, data } });
        self
    }

    /// Advances the cursor without issuing a command.
    pub fn wait_ns(mut self, ns: f64) -> Self {
        self.cursor_ns += ns;
        self.steps.push(TimedStep { offset_ns: self.cursor_ns, step: ProgramStep::Wait });
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        Program { steps: self.steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_places_steps_at_cursor_offsets() {
        let p = ProgramBuilder::new()
            .activate(RowAddr::new(0))
            .wait_ns(2.5)
            .precharge()
            .wait_ns(2.5)
            .activate(RowAddr::new(3))
            .build();
        assert_eq!(p.command_count(), 3);
        assert!((p.duration_ns() - 5.0).abs() < 1e-9);
        assert_eq!(p.steps()[0].offset_ns, 0.0);
        assert!((p.steps()[2].offset_ns - 2.5).abs() < 1e-9);
    }

    #[test]
    fn quac_sequence_violates_t_ras_and_t_rp_but_not_a_nominal_one() {
        let t = TimingParams::ddr4_2400();
        let quac = Program::quac_sequence(Segment::new(0), &t);
        let v = quac.violations(&t);
        assert_eq!(v.len(), 2);

        let nominal = ProgramBuilder::new()
            .activate(RowAddr::new(0))
            .wait_ns(t.t_ras)
            .precharge()
            .wait_ns(t.t_rp)
            .activate(RowAddr::new(3))
            .build();
        assert!(nominal.violations(&t).is_empty());
    }

    #[test]
    fn reduced_trcd_program_reports_trcd_violation() {
        let t = TimingParams::ddr4_2400();
        let p = Program::reduced_trcd_read(RowAddr::new(7), ColumnAddr::new(0), 5.0, &t);
        let v = p.violations(&t);
        assert!(v.iter().any(|x| matches!(x, TimingViolation::TRcd { .. })));
    }

    #[test]
    fn reduced_trp_program_reports_trp_violation_only() {
        let t = TimingParams::ddr4_2400();
        let p = Program::reduced_trp_activate(RowAddr::new(7), 3.0, &t);
        let v = p.violations(&t);
        assert!(v.iter().all(|x| matches!(x, TimingViolation::TRp { .. })));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn read_all_columns_spaces_reads() {
        let p = ProgramBuilder::new().read_all_columns(4, 5.0).build();
        assert_eq!(p.command_count(), 4);
        assert!((p.steps()[3].offset_ns - 15.0).abs() < 1e-9);
    }

    #[test]
    fn rowclone_sequence_has_two_activates_and_two_precharges() {
        let t = TimingParams::ddr4_2400();
        let p = Program::rowclone_sequence(RowAddr::new(8), RowAddr::new(12), &t);
        let acts = p.steps().iter().filter(|s| matches!(s.step, ProgramStep::Activate { .. })).count();
        let pres = p.steps().iter().filter(|s| matches!(s.step, ProgramStep::Precharge)).count();
        assert_eq!(acts, 2);
        assert_eq!(pres, 2);
    }
}
