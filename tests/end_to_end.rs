//! Cross-crate integration tests: the full QUAC-TRNG story from the analog
//! model through the chip simulator, the host controller, post-processing,
//! and statistical validation.

use quac_trng_repro::crypto::{Sha256, VonNeumannCorrector};
use quac_trng_repro::dram_analog::{entropy::bitstream_entropy, PAPER_MODULES};
use quac_trng_repro::dram_core::{BitVec, DataPattern, DramGeometry, Segment};
use quac_trng_repro::dram_sim::DramModuleSim;
use quac_trng_repro::nist_sts::{run_all_tests, Significance};
use quac_trng_repro::softmc::{experiments, HostController};
use quac_trng_repro::trng::characterize::{characterize_module, CharacterizationConfig};
use quac_trng_repro::trng::pipeline::QuacTrng;
use quac_trng_repro::trng::throughput::ThroughputModel;

#[test]
fn algorithm_1_on_the_simulated_chip_yields_entropy_on_the_modelled_bitlines() {
    // Run Algorithm 1 end-to-end through the SoftMC host on the behavioural
    // chip and confirm that bitlines the analog model calls metastable indeed
    // produce random bitstreams.
    let geom = DramGeometry::tiny_test();
    let sim = DramModuleSim::with_seed(geom, 4242);
    let mut host = HostController::new(sim);
    let bank = host.module().bank_ref(0, 0);
    let segment = Segment::new(6);
    let snapshots = experiments::collect_quac_bitstreams(
        &mut host,
        bank,
        segment,
        DataPattern::best_average(),
        60,
    )
    .unwrap();

    let model = host.module().analog_model().clone();
    let probs = model.bitline_probabilities(
        segment,
        DataPattern::best_average(),
        host.module().conditions(),
    );
    // The most metastable modelled bitline must show entropy in the measured
    // bitstream; a fully-biased bitline must not.
    let (metastable, _) = probs
        .iter()
        .enumerate()
        .min_by(|a, b| (a.1 - 0.5).abs().partial_cmp(&(b.1 - 0.5).abs()).unwrap())
        .unwrap();
    let (biased, _) = probs
        .iter()
        .enumerate()
        .max_by(|a, b| (a.1 - 0.5).abs().partial_cmp(&(b.1 - 0.5).abs()).unwrap())
        .unwrap();
    let metastable_entropy =
        bitstream_entropy(&experiments::bitline_stream(&snapshots, metastable));
    let biased_entropy = bitstream_entropy(&experiments::bitline_stream(&snapshots, biased));
    assert!(metastable_entropy > 0.5, "metastable bitline entropy {metastable_entropy}");
    assert!(biased_entropy < 0.3, "biased bitline entropy {biased_entropy}");
}

#[test]
fn trng_output_passes_nist_and_differs_across_modules() {
    let mut a = QuacTrng::for_module(&PAPER_MODULES[0], 1);
    let mut b = QuacTrng::for_module(&PAPER_MODULES[1], 1);
    let stream_a = a.generate_bits(60_000);
    let stream_b = b.generate_bits(60_000);
    assert_ne!(stream_a.to_bytes(), stream_b.to_bytes());
    let results = run_all_tests(&stream_a);
    let failures: Vec<_> =
        results.iter().filter(|r| !r.passes(Significance::PAPER)).map(|r| r.name).collect();
    assert!(failures.is_empty(), "NIST failures: {failures:?}");
}

#[test]
fn post_processing_pipeline_is_consistent_with_the_crypto_crate() {
    // A raw QUAC snapshot hashed manually must equal the pipeline's output
    // building blocks (SHA-256 determinism), and VNC must debias raw streams.
    let raw = BitVec::from_bits((0..512).map(|i| i % 3 == 0));
    assert_eq!(Sha256::digest_bits(&raw), Sha256::digest_bits(&raw));
    let biased = BitVec::from_bits((0..10_000).map(|i| i % 10 != 0));
    let corrected = VonNeumannCorrector::correct(&biased);
    assert!(corrected.len() < biased.len() / 2);
}

#[test]
fn characterisation_feeds_the_throughput_model_with_sensible_sib_counts() {
    let module = &PAPER_MODULES[3];
    let model = module.analog_model();
    let cfg = CharacterizationConfig {
        segment_stride: 512,
        bitline_stride: 64,
        conditions: Default::default(),
    };
    let ch = characterize_module(&model, DataPattern::best_average(), &cfg);
    let tp = ThroughputModel::new(module.geometry(), ch.best_segment_entropy);
    // Throughput derived from the simulated characterisation is in the same
    // range as Figure 11 (2.4 .. 5.5 Gb/s per channel for RC+BGP).
    let rc_bgp = tp.figure11()[2].throughput_gbps;
    assert!(rc_bgp > 1.5 && rc_bgp < 6.0, "RC+BGP throughput {rc_bgp}");
}

#[test]
fn rowclone_initialisation_matches_pattern_fill_on_the_simulator() {
    // Initialising a segment via in-DRAM copies from reserved all-0/all-1
    // rows produces the same stored data as direct pattern writes.
    let geom = DramGeometry::tiny_test();
    let mut sim = DramModuleSim::with_seed(geom, 7);
    let bank = sim.bank_ref(1, 1);
    let segment = Segment::new(8);
    let pattern = DataPattern::best_average();

    // Reserved source rows in the same subarray as the segment.
    let zeros_row = quac_trng_repro::dram_core::RowAddr::new(40);
    let ones_row = quac_trng_repro::dram_core::RowAddr::new(41);
    sim.fill_row(bank, zeros_row, &BitVec::zeros(geom.row_bits)).unwrap();
    sim.fill_row(bank, ones_row, &BitVec::ones(geom.row_bits)).unwrap();
    for (i, row) in segment.rows().iter().enumerate() {
        let src = if pattern.fill(i).bit() { ones_row } else { zeros_row };
        sim.rowclone(bank, src, *row).unwrap();
    }
    for (i, row) in segment.rows().iter().enumerate() {
        let data = sim.read_row(bank, *row).unwrap();
        let expected = pattern.fill(i).bit();
        assert_eq!(data.ones_fraction() > 0.5, expected, "row {row}");
    }
}
