//! Property tests of the scheduler fairness bound and the least-loaded
//! placement rule under the adversarial workloads of
//! `qt_workloads::adversarial` — the deterministic, thread-free half of the
//! hostile-conditions story (the threaded half lives in `rng_service.rs`).
//!
//! Two invariants are pinned against every profile (burst trains,
//! starvation bait, multi-rank interleaves) and against proptest-generated
//! push/pop interleavings of them:
//!
//! 1. **No client starves past `fairness_window`** — while normal-priority
//!    work waits, at most `fairness_window` consecutive high-priority
//!    requests are dispatched.
//! 2. **Placement never selects a quarantined shard** while any healthy
//!    shard exists, and always selects a load minimum among the eligible
//!    shards.

use proptest::prelude::*;
use quac_trng_repro::rng_service::{
    least_loaded_shard, ClientId, Priority, RngRequest, ShardScheduler,
};
use quac_trng_repro::workloads::{AdversarialProfile, ServiceRequestEvent};

fn to_request(event: &ServiceRequestEvent, seq: u64) -> RngRequest {
    RngRequest {
        client: ClientId(event.client),
        priority: if event.high_priority { Priority::High } else { Priority::Normal },
        len: event.len,
        seq,
        submitted_at: std::time::Instant::now(),
        deadline: None,
    }
}

/// Feeds a request stream through one `ShardScheduler`, interleaving
/// `pops_per_push` dispatches per submission and draining at the end, while
/// asserting the starvation bound with a shadow count of queued normal
/// requests. Returns (dispatched, max observed high-priority streak while
/// normal work waited).
fn run_fairness_check(
    events: &[ServiceRequestEvent],
    window: u32,
    pops_per_push: usize,
) -> (usize, u32) {
    struct Monitor {
        window: u32,
        queued_normal: usize,
        streak: u32,
        max_streak: u32,
        dispatched: usize,
    }
    impl Monitor {
        fn on_pop(&mut self, scheduler: &mut ShardScheduler) {
            let Some(req) = scheduler.pop() else { return };
            self.dispatched += 1;
            match req.priority {
                Priority::High if self.queued_normal > 0 => {
                    self.streak += 1;
                    self.max_streak = self.max_streak.max(self.streak);
                    assert!(
                        self.streak <= self.window,
                        "{} consecutive high dispatches with normal work waiting (window {})",
                        self.streak,
                        self.window
                    );
                }
                Priority::High => self.streak = 0,
                Priority::Normal => {
                    self.queued_normal -= 1;
                    self.streak = 0;
                }
            }
        }
    }
    let mut scheduler = ShardScheduler::new(window);
    let mut monitor =
        Monitor { window, queued_normal: 0, streak: 0, max_streak: 0, dispatched: 0 };
    for (seq, event) in events.iter().enumerate() {
        scheduler.push(to_request(event, seq as u64));
        if !event.high_priority {
            monitor.queued_normal += 1;
        }
        for _ in 0..pops_per_push {
            monitor.on_pop(&mut scheduler);
        }
    }
    while !scheduler.is_empty() {
        monitor.on_pop(&mut scheduler);
    }
    (monitor.dispatched, monitor.max_streak)
}

#[test]
fn no_profile_starves_normal_work_past_the_fairness_window() {
    for profile in AdversarialProfile::all() {
        for window in [1u32, 2, 4] {
            for pops_per_push in [0usize, 1, 2] {
                let events = profile.generate(600, 11);
                let (dispatched, _) = run_fairness_check(&events, window, pops_per_push);
                assert_eq!(dispatched, events.len(), "{}: conservation", profile.name());
            }
        }
    }
}

#[test]
fn starvation_bait_actually_exercises_the_bound() {
    // The bait profile must create real pressure: with a window of 2 the
    // maximum observed streak should reach the bound (otherwise the test
    // proves nothing about the adversarial case).
    let profile = AdversarialProfile::StarvationBait {
        high_clients: 3,
        normal_clients: 1,
        high_fraction: 0.95,
        bytes_per_request: 64,
    };
    // Queue the whole flood before dispatching (pops_per_push = 0): the
    // drain then dispatches highs while normals wait, which is the case
    // the bound constrains.
    let events = profile.generate(2000, 5);
    let (_, max_streak) = run_fairness_check(&events, 2, 0);
    assert_eq!(max_streak, 2, "the flood should push the scheduler to its fairness bound");
}

/// Simulates placement over an adversarial stream with evolving loads and a
/// quarantine mask: each event places on `least_loaded_shard`, charges the
/// shard, and every few events the most-loaded shard completes (drains) a
/// request — an adversarial completion order. Asserts both placement
/// invariants at every step.
fn run_placement_check(
    events: &[ServiceRequestEvent],
    shard_count: usize,
    quarantined: &[bool],
    drain_every: usize,
) {
    assert_eq!(quarantined.len(), shard_count);
    let mut loads = vec![0usize; shard_count];
    let mut outstanding: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
    let mut next = 0usize;
    let any_healthy = quarantined.iter().any(|q| !q);
    for (i, event) in events.iter().enumerate() {
        let pick = least_loaded_shard(shard_count, next, |s| loads[s], |s| quarantined[s]);
        next = (pick + 1) % shard_count;
        if any_healthy {
            assert!(!quarantined[pick], "event {i}: placed on a quarantined shard");
            let min_healthy = (0..shard_count)
                .filter(|&s| !quarantined[s])
                .map(|s| loads[s])
                .min()
                .unwrap();
            assert_eq!(loads[pick], min_healthy, "event {i}: not a healthy load minimum");
        }
        loads[pick] += event.len;
        outstanding[pick].push(event.len);
        if drain_every > 0 && i % drain_every == drain_every - 1 {
            // Adversarial completion: the *most* loaded shard finishes one
            // request, so placement keeps being re-decided under skew.
            if let Some(s) = (0..shard_count).filter(|&s| !outstanding[s].is_empty()).max_by_key(|&s| loads[s]) {
                let len = outstanding[s].pop().unwrap();
                loads[s] -= len;
            }
        }
    }
}

#[test]
fn placement_invariants_hold_under_every_profile_and_mask() {
    for profile in AdversarialProfile::all() {
        let events = profile.generate(500, 23);
        for shard_count in [1usize, 2, 4] {
            for mask_bits in 0..(1u32 << shard_count) {
                let quarantined: Vec<bool> =
                    (0..shard_count).map(|s| mask_bits & (1 << s) != 0).collect();
                for drain_every in [0usize, 1, 3] {
                    run_placement_check(&events, shard_count, &quarantined, drain_every);
                }
            }
        }
    }
}

proptest! {
    /// Fairness under proptest-varied profiles, windows, and interleavings.
    #[test]
    fn prop_adversarial_streams_respect_the_fairness_window(
        profile_idx in 0usize..3,
        seed in any::<u64>(),
        window in 1u32..6,
        pops_per_push in 0usize..3,
        count in 50usize..400,
    ) {
        let profile = AdversarialProfile::all()[profile_idx];
        let events = profile.generate(count, seed);
        let (dispatched, _) = run_fairness_check(&events, window, pops_per_push);
        prop_assert_eq!(dispatched, events.len());
    }

    /// Placement safety under proptest-varied masks and drain cadences.
    #[test]
    fn prop_adversarial_streams_respect_placement_invariants(
        profile_idx in 0usize..3,
        seed in any::<u64>(),
        shard_count in 1usize..6,
        mask_seed in any::<u32>(),
        drain_every in 0usize..4,
    ) {
        let profile = AdversarialProfile::all()[profile_idx];
        let events = profile.generate(200, seed);
        let quarantined: Vec<bool> =
            (0..shard_count).map(|s| mask_seed & (1 << s) != 0).collect();
        run_placement_check(&events, shard_count, &quarantined, drain_every);
    }
}
