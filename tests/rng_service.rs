//! Integration tests of the sharded RNG service: concurrent serial
//! equivalence, deterministic replay, backpressure, and fairness — the
//! test-first contract of the service layer.
//!
//! The determinism strategy: each shard's generator is seeded from
//! `(base_seed, shard index)`, so a single-threaded `QuacTrng` with the same
//! derived seed defines each shard's reference byte stream. Completions carry
//! `(shard, stream_offset)`, which lets these tests reassemble exactly what
//! each shard handed out — independent of thread interleaving.

use quac_trng_repro::dram_analog::{ModuleVariation, OperatingConditions, QuacAnalogModel};
use quac_trng_repro::dram_core::{DataPattern, DramGeometry};
use quac_trng_repro::memctrl::IdleBudget;
use quac_trng_repro::rng_service::{
    ClientId, Completion, DegradedPolicy, HealthPolicy, Priority, RngService, RngServiceConfig,
    ServiceStats, ShardState, SubmitError, ValidationConfig, WaitError,
};
use quac_trng_repro::trng::characterize::{characterize_module, CharacterizationConfig};
use quac_trng_repro::trng::fault::FaultInjector;
use quac_trng_repro::trng::pipeline::{shard_seed, QuacTrng};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BASE_SEED: u64 = 0xDEAD_BEEF;

fn tiny_shards(count: usize) -> (QuacAnalogModel, Vec<QuacTrng>) {
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
    let cfg = CharacterizationConfig {
        segment_stride: 1,
        bitline_stride: 1,
        conditions: OperatingConditions::nominal(),
    };
    let ch = characterize_module(&model, DataPattern::best_average(), &cfg);
    let shards = QuacTrng::shards(&model, &ch, BASE_SEED, count);
    (model, shards)
}

/// The serial reference: what shard `idx` must emit, byte for byte.
fn reference_stream(model: &QuacAnalogModel, idx: usize, len: usize) -> Vec<u8> {
    let cfg = CharacterizationConfig {
        segment_stride: 1,
        bitline_stride: 1,
        conditions: OperatingConditions::nominal(),
    };
    let ch = characterize_module(model, DataPattern::best_average(), &cfg);
    QuacTrng::with_characterization(model.clone(), ch, shard_seed(BASE_SEED, idx))
        .generate_bytes(len)
}

/// Reassembles what one shard handed out: sort its completions by stream
/// offset, check contiguity, concatenate.
fn reassemble_shard(completions: &[Completion], shard: usize) -> Vec<u8> {
    let mut chunks: Vec<&Completion> =
        completions.iter().filter(|c| c.shard == shard).collect();
    chunks.sort_by_key(|c| c.stream_offset);
    let mut stream = Vec::new();
    for c in chunks {
        assert_eq!(
            c.stream_offset as usize,
            stream.len(),
            "shard {shard}: completions must tile the stream with no gap or overlap"
        );
        stream.extend_from_slice(&c.bytes);
    }
    stream
}

#[test]
fn concurrent_clients_reproduce_the_serial_per_shard_streams() {
    // 4 clients × 2 shards, submissions racing from 4 threads: whatever the
    // interleaving, each shard must hand out exactly its serial stream.
    const CLIENTS: u32 = 4;
    const SHARDS: usize = 2;
    const REQUESTS_PER_CLIENT: usize = 24;
    let (model, shards) = tiny_shards(SHARDS);
    let service = Arc::new(RngService::start(shards, RngServiceConfig::default()));

    let mut handles = Vec::new();
    for client in 0..CLIENTS {
        let service = Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            let mut completions = Vec::new();
            for i in 0..REQUESTS_PER_CLIENT {
                // Vary sizes across and within clients, including reads much
                // smaller than one QUAC iteration's output (batching fodder).
                let len = 1 + (client as usize * 97 + i * 31) % 500;
                let priority =
                    if (client + i as u32) % 3 == 0 { Priority::High } else { Priority::Normal };
                let ticket = service
                    .submit(ClientId(client), priority, len)
                    .expect("submission accepted");
                let completion = ticket.wait().expect("request served");
                assert_eq!(completion.bytes.len(), len);
                assert_eq!(completion.client, ClientId(client));
                completions.push(completion);
            }
            completions
        }));
    }
    let completions: Vec<Completion> =
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect();

    let stats = Arc::try_unwrap(service).expect("all clients joined").shutdown();
    let total: usize = completions.iter().map(|c| c.bytes.len()).sum();
    assert_eq!(stats.completed_bytes as usize, total);
    assert_eq!(stats.completed_requests as usize, (CLIENTS as usize) * REQUESTS_PER_CLIENT);

    // Every shard served something (round-robin assignment cannot starve a
    // shard with this many requests)...
    for shard in 0..SHARDS {
        let stream = reassemble_shard(&completions, shard);
        assert!(!stream.is_empty(), "shard {shard} served nothing");
        // ...and what it served is exactly the serial reference stream.
        assert_eq!(
            stream,
            reference_stream(&model, shard, stream.len()),
            "shard {shard} diverged from its single-threaded reference"
        );
    }
}

#[test]
fn sequential_submission_is_fully_deterministic_per_request() {
    // One submitter, one request outstanding at a time: not just the shard
    // streams but each request's bytes are a pure function of the seeds.
    const SHARDS: usize = 2;
    let sizes = [5usize, 64, 301, 32, 7, 128, 90, 1];
    let run = || {
        let (_, shards) = tiny_shards(SHARDS);
        let service = RngService::start(shards, RngServiceConfig::default());
        let bytes: Vec<Vec<u8>> = sizes
            .iter()
            .map(|&len| {
                let t = service.submit(ClientId(0), Priority::Normal, len).unwrap();
                t.wait().unwrap().bytes
            })
            .collect();
        service.shutdown();
        bytes
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seeds + same submission order must replay exactly");

    // And each request's bytes are the next chunk of its shard's reference
    // stream (round-robin assignment: request k -> shard k % SHARDS).
    let (model, _) = tiny_shards(SHARDS);
    let mut offsets = [0usize; SHARDS];
    for (k, (len, bytes)) in sizes.iter().zip(&first).enumerate() {
        let shard = k % SHARDS;
        let reference = reference_stream(&model, shard, offsets[shard] + len);
        assert_eq!(
            bytes.as_slice(),
            &reference[offsets[shard]..],
            "request {k} is not the next chunk of shard {shard}'s stream"
        );
        offsets[shard] += len;
    }
}

#[test]
fn backpressure_caps_in_flight_bytes_and_rejects_oversize() {
    const BUDGET: usize = 4096;
    let (_, shards) = tiny_shards(2);
    let cfg = RngServiceConfig { max_inflight_bytes: BUDGET, ..RngServiceConfig::default() };
    let service = Arc::new(RngService::start(shards, cfg));

    // Requests that can never fit are refused outright rather than parking
    // the caller forever.
    assert_eq!(
        service.try_submit(ClientId(0), Priority::Normal, BUDGET + 1).unwrap_err(),
        SubmitError::TooLarge { requested: BUDGET + 1, budget: BUDGET }
    );
    assert_eq!(
        service.submit(ClientId(0), Priority::Normal, BUDGET + 1).unwrap_err(),
        SubmitError::TooLarge { requested: BUDGET + 1, budget: BUDGET }
    );
    assert_eq!(
        service.try_submit(ClientId(0), Priority::Normal, 0).unwrap_err(),
        SubmitError::Empty
    );

    // Hammer the service from several blocking clients; admission control
    // must keep the in-flight high-water mark within the budget.
    let mut handles = Vec::new();
    for client in 0..6u32 {
        let service = Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            let mut tickets = Vec::new();
            for i in 0..40usize {
                let len = 64 + (client as usize * 131 + i * 53) % 1024;
                tickets.push(service.submit(ClientId(client), Priority::Normal, len).unwrap());
            }
            for t in tickets {
                t.wait().unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = Arc::try_unwrap(service).expect("clients joined").shutdown();
    assert!(stats.peak_in_flight_bytes > 0);
    assert!(
        stats.peak_in_flight_bytes <= BUDGET,
        "peak in-flight {} exceeded the {BUDGET} B budget",
        stats.peak_in_flight_bytes
    );
}

#[test]
fn saturated_queue_rejects_nonblocking_submissions() {
    // Pace the single shard to a crawl (~1 KB/s): the first batch parks in
    // the worker for far longer than this test runs, so admitted bytes stay
    // in flight and try_submit must observe saturation deterministically.
    const BUDGET: usize = 2048;
    let (_, shards) = tiny_shards(1);
    let cfg = RngServiceConfig {
        max_inflight_bytes: BUDGET,
        pacing: IdleBudget::from_gbps(1e-5),
        ..RngServiceConfig::default()
    };
    let service = RngService::start(shards, cfg);

    let mut admitted = 0usize;
    let mut saturated = None;
    for _ in 0..(BUDGET / 512 + 1) {
        match service.try_submit(ClientId(0), Priority::Normal, 512) {
            Ok(_) => admitted += 512,
            Err(e) => {
                saturated = Some(e);
                break;
            }
        }
    }
    assert_eq!(admitted, BUDGET, "exactly the budget's worth of bytes is admitted");
    assert_eq!(
        saturated,
        Some(SubmitError::Saturated { requested: 512, in_flight: BUDGET, budget: BUDGET })
    );
    // Abort discards the parked work instead of waiting out the pacing delay.
    let stats = service.abort();
    assert_eq!(stats.completed_bytes, 0);
}

#[test]
fn starved_low_priority_client_still_completes() {
    // One shard, a flood of high-priority traffic from three clients, one
    // normal-priority request in the middle: the fairness window guarantees
    // the normal request is dispatched long before the flood drains.
    const FLOOD: usize = 120;
    const WINDOW: u32 = 4;
    const LEN: usize = 256;
    let (_, shards) = tiny_shards(1);
    let cfg = RngServiceConfig {
        fairness_window: WINDOW,
        // Deep enough that the whole flood queues without parking.
        max_inflight_bytes: (FLOOD + 1) * LEN,
        // One request per batch so dispatch order is visible in stream
        // offsets, and ~2 ms of pacing per batch so the queue stays deep
        // while submissions race ahead of the worker.
        max_batch_requests: 1,
        max_batch_bytes: LEN,
        pacing: IdleBudget::from_gbps(0.001),
        ..RngServiceConfig::default()
    };
    let service = RngService::start(shards, cfg);

    // Fill the queue: the whole high-priority flood first…
    let flood: Vec<_> = (0..FLOOD)
        .map(|i| {
            service
                .submit(ClientId(1 + (i % 3) as u32), Priority::High, LEN)
                .expect("flood admitted")
        })
        .collect();
    // …then the one low-priority request, last into the queue.
    let low = service.submit(ClientId(9), Priority::Normal, LEN).expect("admitted");

    let low_offset = low.wait().expect("the low-priority request completes").stream_offset;
    // Dispatch order is stream_offset / LEN (one request per batch). Once
    // the normal request is queued, at most `fairness_window` highs may pass
    // it; submission outpaces the ~2 ms/batch worker by orders of magnitude,
    // so only a few batches can have been dispatched before it queued. A
    // 4× margin on top of that still catches real starvation (which would
    // put it near position FLOOD).
    let position = low_offset as usize / LEN;
    assert!(
        position <= 4 * (WINDOW as usize + 1),
        "low-priority request starved: dispatched at position {position} of {}",
        FLOOD + 1
    );
    for t in flood {
        t.wait().expect("flood request served");
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed_requests as usize, FLOOD + 1);
}

#[test]
fn shutdown_drains_queued_requests_and_then_refuses_work() {
    let (_, shards) = tiny_shards(2);
    let service = RngService::start(shards, RngServiceConfig::default());
    let tickets: Vec<_> = (0..20)
        .map(|i| service.submit(ClientId(i % 4), Priority::Normal, 100).unwrap())
        .collect();
    let stats = service.shutdown();
    assert_eq!(stats.completed_requests, 20);
    assert_eq!(stats.completed_bytes, 2000);
    assert_eq!(stats.per_shard_bytes.iter().sum::<u64>(), 2000);
    // Every ticket was served before the workers stopped.
    for t in tickets {
        assert_eq!(t.wait().unwrap().bytes.len(), 100);
    }
}

#[test]
fn shutdown_lifts_pacing_and_drains_promptly() {
    // At ~1 KB/s pacing the queued work owes minutes of delivery delay, but
    // a drain must lift pacing and complete in wall-clock seconds.
    let (_, shards) = tiny_shards(1);
    let cfg = RngServiceConfig {
        pacing: IdleBudget::from_gbps(1e-5),
        ..RngServiceConfig::default()
    };
    let service = RngService::start(shards, cfg);
    let tickets: Vec<_> = (0..4)
        .map(|_| service.submit(ClientId(0), Priority::Normal, 4096).unwrap())
        .collect();
    let started = std::time::Instant::now();
    let stats = service.shutdown();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "drain took {:?} — pacing was not lifted",
        started.elapsed()
    );
    assert_eq!(stats.completed_requests, 4);
    for t in tickets {
        assert_eq!(t.wait().unwrap().bytes.len(), 4096);
    }
}

// ---- continuous in-service validation: quarantine and readmission ----

/// A validation config tuned for test speed: small windows, lossless tap
/// (deterministic coverage), streak-only quarantine (EWMA disabled so a
/// healthy shard can only be fenced by two *consecutive* unlucky windows,
/// which the fixed seeds rule out), stride-1 recharacterisation of the tiny
/// model.
fn test_validation() -> ValidationConfig {
    ValidationConfig {
        enabled: true,
        window_bits: 16_000,
        lossless_tap: true,
        policy: HealthPolicy {
            ewma_alpha: 0.1,
            min_pass_ewma: 0.0,
            max_consecutive_failures: 2,
            probation_windows: 2,
        },
        recharacterization: CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions: OperatingConditions::nominal(),
        },
        ..ValidationConfig::default()
    }
}

/// Polls `stats()` until `predicate` holds, failing after `timeout`.
fn wait_for(
    service: &RngService,
    timeout: Duration,
    what: &str,
    predicate: impl Fn(&ServiceStats) -> bool,
) -> ServiceStats {
    let deadline = Instant::now() + timeout;
    loop {
        let stats = service.stats();
        if predicate(&stats) {
            return stats;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}: {stats:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Feeds a persistently-faulty single-shard service one request at a time
/// until the validator fences its only shard. The fence can land while a
/// request is still queued — with no healthy target it stays queued forever
/// (the degraded-mode contract), so every probe carries a deadline and a
/// typed `Expired` (or a `Degraded` rejection, under either policy) is an
/// acceptable end of a probe.
fn drive_until_total_quarantine(service: &RngService) {
    let give_up = Instant::now() + Duration::from_secs(60);
    loop {
        if service.stats().validation.quarantines >= 1 {
            return;
        }
        assert!(Instant::now() < give_up, "persistent fault never quarantined");
        let deadline = Instant::now() + Duration::from_secs(2);
        match service.submit_with_deadline(ClientId(0), Priority::Normal, 2048, deadline) {
            Ok(ticket) => match ticket.wait() {
                Ok(c) => assert_eq!(c.bytes.len(), 2048),
                Err(WaitError::Expired(_)) => {}
                Err(WaitError::Canceled(c)) => panic!("service still running: {c}"),
            },
            Err(SubmitError::Degraded { .. }) => return,
            Err(e) => panic!("unexpected admission failure: {e}"),
        }
    }
}

#[test]
fn biased_shard_is_quarantined_within_bounded_windows_and_readmitted() {
    const SHARDS: usize = 2;
    const FAULTY: usize = 1;
    const REQ: usize = 2048;
    let (model, mut shards) = tiny_shards(SHARDS);
    // A transient delivery-side bias on shard 1: every served window fails
    // monobit decisively, and recharacterisation routes around the fault.
    shards[FAULTY].inject_fault(FaultInjector::bias(0.75, 7).transient());
    let cfg = RngServiceConfig { validation: test_validation(), ..RngServiceConfig::default() };
    let service = RngService::start(shards, cfg);

    // Drive traffic until the validator fences the faulty shard. Each poll
    // round pushes 8 × 2 KiB; least-loaded placement spreads it over both
    // shards, so the faulty shard accumulates windows quickly.
    let mut completions: Vec<Completion> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    let quarantine_stats = loop {
        let tickets: Vec<_> = (0..8)
            .map(|i| service.submit(ClientId(i % 4), Priority::Normal, REQ).unwrap())
            .collect();
        completions.extend(tickets.into_iter().map(|t| t.wait().expect("served")));
        let stats = service.stats();
        if stats.validation.quarantines >= 1 {
            break stats;
        }
        assert!(Instant::now() < deadline, "faulty shard never quarantined: {stats:?}");
    };

    // Bounded detection: with every faulty window failing and a streak
    // bound of 2, the shard is fenced the moment its second window is
    // graded (allow one in-flight window of slack for the poll).
    let health = &quarantine_stats.shard_health[FAULTY];
    assert!(health.windows_failed >= 2, "{health:?}");
    assert!(
        health.windows_validated <= 3,
        "detection took {} windows, expected ≤ K=3: {health:?}",
        health.windows_validated
    );
    assert_eq!(quarantine_stats.validation.quarantines, 1);
    assert!(health.state == ShardState::Quarantined || health.state == ShardState::Probation);

    // The loop closes on its own: recharacterisation clears the transient
    // fault, probation passes the battery twice, the shard is readmitted.
    let readmitted = wait_for(&service, Duration::from_secs(120), "readmission", |s| {
        s.validation.readmissions >= 1
    });
    assert!(readmitted.validation.recharacterizations >= 1);
    assert!(readmitted.validation.probation_windows >= 2);
    assert_eq!(readmitted.shard_health[FAULTY].state, ShardState::Healthy);

    // A readmitted shard re-enters placement and serves again.
    let before = service.stats().per_shard_bytes[FAULTY];
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let tickets: Vec<_> = (0..4)
            .map(|_| service.submit(ClientId(0), Priority::Normal, REQ).unwrap())
            .collect();
        completions.extend(tickets.into_iter().map(|t| t.wait().expect("served")));
        if service.stats().per_shard_bytes[FAULTY] > before {
            break;
        }
        assert!(Instant::now() < deadline, "readmitted shard never placed again");
    }

    // Completions served after readmission carry the bumped stream epoch,
    // and each epoch's offsets are gapless from zero on their own.
    let mut epoch1: Vec<&Completion> =
        completions.iter().filter(|c| c.shard == FAULTY && c.epoch == 1).collect();
    assert!(!epoch1.is_empty(), "post-readmission completions must carry epoch 1");
    epoch1.sort_by_key(|c| c.stream_offset);
    let mut expected_offset = 0u64;
    for c in &epoch1 {
        assert_eq!(c.stream_offset, expected_offset, "epoch-1 stream must be gapless");
        expected_offset += c.bytes.len() as u64;
    }
    assert!(completions.iter().all(|c| c.shard != (1 - FAULTY) || c.epoch == 0));

    let stats = service.shutdown();
    // Validation was lossless: everything delivered was tapped.
    assert_eq!(stats.validation.bytes_tapped, stats.completed_bytes);
    assert_eq!(stats.validation.bytes_dropped, 0);
    assert!(stats.validation.windows_validated >= 3);
    assert_eq!(stats.latency_us.count(), stats.completed_requests);
    assert_eq!(stats.queue_depth.count(), stats.completed_requests);

    // The healthy shard's stream is untouched by the whole episode: its
    // completions still reassemble bit-identically to the single-threaded
    // reference — validation taps copies, never the stream.
    let healthy = reassemble_shard(&completions, 1 - FAULTY);
    assert!(!healthy.is_empty());
    assert_eq!(
        healthy,
        reference_stream(&model, 1 - FAULTY, healthy.len()),
        "healthy shard diverged while the faulty one was handled"
    );
}

#[test]
fn shutdown_during_endless_requalification_terminates_cleanly() {
    const SHARDS: usize = 2;
    const FAULTY: usize = 1;
    let (model, mut shards) = tiny_shards(SHARDS);
    // A *persistent* stuck-at fault: probation can never pass, so the shard
    // cycles recharacterise → probation-fail forever. Shutdown must still
    // drain queued work and return promptly.
    shards[FAULTY].inject_fault(FaultInjector::stuck_at(0, true));
    let cfg = RngServiceConfig { validation: test_validation(), ..RngServiceConfig::default() };
    let service = RngService::start(shards, cfg);

    let mut completions = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    while service.stats().validation.quarantines == 0 {
        let tickets: Vec<_> = (0..8)
            .map(|_| service.submit(ClientId(0), Priority::Normal, 2048).unwrap())
            .collect();
        completions.extend(tickets.into_iter().map(|t| t.wait().expect("served")));
        assert!(Instant::now() < deadline, "persistent fault never quarantined");
    }
    // Queue more work while the shard is fenced: it must be served by the
    // healthy shard (placement skips the quarantined one).
    let tickets: Vec<_> = (0..6)
        .map(|_| service.submit(ClientId(1), Priority::Normal, 1024).unwrap())
        .collect();
    for t in tickets {
        let c = t.wait().expect("served during quarantine");
        assert_eq!(c.shard, 1 - FAULTY, "quarantined shard must not be placed");
        completions.push(c);
    }

    let started = Instant::now();
    let stats = service.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "drain mid-requalification took {:?}",
        started.elapsed()
    );
    assert!(stats.validation.quarantines >= 1);
    assert_eq!(stats.validation.readmissions, 0, "a persistent fault can never requalify");
    assert_ne!(stats.shard_health[FAULTY].state, ShardState::Healthy);
    // Healthy shard output stayed bit-identical throughout.
    let healthy = reassemble_shard(&completions, 1 - FAULTY);
    assert_eq!(healthy, reference_stream(&model, 1 - FAULTY, healthy.len()));
}

#[test]
fn all_quarantined_fail_fast_rejects_new_work_and_drains_cleanly() {
    // A single shard with a persistent fault: once quarantined there is no
    // healthy shard left. Under the default FailFast policy the service must
    // *refuse* new work with a typed Degraded error — a fenced shard never
    // serves while the service runs — and shutdown must still terminate
    // despite the endless requalification loop.
    let (_, mut shards) = tiny_shards(1);
    shards[0].inject_fault(FaultInjector::stuck_at(0, true));
    let cfg = RngServiceConfig { validation: test_validation(), ..RngServiceConfig::default() };
    let service = RngService::start(shards, cfg);

    // Serve one request at a time: two 2048 B requests complete two failing
    // 2000 B windows, which is the streak bound. The fence can land between
    // admission and dispatch, stranding the request on the only shard — the
    // deadline turns that into a typed expiry instead of an eternal wait.
    drive_until_total_quarantine(&service);

    // Degraded: both the blocking and the non-blocking paths reject
    // immediately with the typed error and count the rejection.
    for _ in 0..3 {
        assert_eq!(
            service.submit(ClientId(1), Priority::Normal, 1024).unwrap_err(),
            SubmitError::Degraded { quarantined: 1 }
        );
        assert_eq!(
            service.try_submit(ClientId(1), Priority::Normal, 1024).unwrap_err(),
            SubmitError::Degraded { quarantined: 1 }
        );
    }
    let stats = service.stats();
    assert!(stats.degraded_rejections >= 6, "{stats:?}");
    assert_ne!(stats.shard_health[0].state, ShardState::Healthy);

    let started = Instant::now();
    let stats = service.shutdown();
    assert!(started.elapsed() < Duration::from_secs(30), "drain hung while degraded");
    assert!(stats.validation.quarantines >= 1);
    assert_eq!(stats.validation.readmissions, 0);
    assert_eq!(stats.failed_over_requests, 0, "no healthy target ever existed");
}

#[test]
#[should_panic(expected = "whole number of bytes")]
fn misaligned_validation_window_fails_fast_at_start() {
    let (_, shards) = tiny_shards(1);
    let cfg = RngServiceConfig {
        validation: ValidationConfig { window_bits: 50_001, ..test_validation() },
        ..RngServiceConfig::default()
    };
    let _ = RngService::start(shards, cfg);
}

#[test]
fn abort_during_quarantine_terminates_cleanly() {
    const FAULTY: usize = 0;
    let (_, mut shards) = tiny_shards(2);
    shards[FAULTY].inject_fault(FaultInjector::burst(64, 48));
    let cfg = RngServiceConfig { validation: test_validation(), ..RngServiceConfig::default() };
    let service = RngService::start(shards, cfg);
    let deadline = Instant::now() + Duration::from_secs(60);
    while service.stats().validation.quarantines == 0 {
        let tickets: Vec<_> = (0..8)
            .map(|_| service.submit(ClientId(0), Priority::Normal, 2048).unwrap())
            .collect();
        for t in tickets {
            t.wait().expect("served");
        }
        assert!(Instant::now() < deadline, "burst fault never quarantined");
    }
    let started = Instant::now();
    let stats = service.abort();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "abort mid-requalification took {:?}",
        started.elapsed()
    );
    assert!(stats.validation.quarantines >= 1);
}

#[test]
fn abort_cancels_unserved_tickets() {
    // Pace near zero so nothing completes, then abort: tickets must report
    // cancellation rather than hanging.
    let (_, shards) = tiny_shards(1);
    let cfg = RngServiceConfig {
        pacing: IdleBudget::from_gbps(1e-5),
        ..RngServiceConfig::default()
    };
    let service = RngService::start(shards, cfg);
    let tickets: Vec<_> = (0..5)
        .map(|_| service.submit(ClientId(0), Priority::Normal, 64).unwrap())
        .collect();
    service.abort();
    for t in tickets {
        // Non-blocking pollers must see the cancellation too, not an
        // eternal "pending" — and repeated polls must agree (the terminal
        // state is cached, never re-derived from a dead channel).
        assert!(
            matches!(t.try_wait(), Err(WaitError::Canceled(_))),
            "try_wait must report cancellation after abort"
        );
        assert!(matches!(t.try_wait(), Err(WaitError::Canceled(_))), "cancellation is sticky");
        assert!(
            matches!(t.wait(), Err(WaitError::Canceled(_))),
            "aborted request must cancel its ticket"
        );
    }
}

#[test]
fn served_ticket_polls_idempotently_even_after_abort() {
    // Regression: try_wait used to consume the completion from the channel,
    // so a second poll saw a disconnected channel and misreported a *served*
    // request as canceled once the service stopped. The terminal state must
    // be cached: every poll after service abort still returns the bytes.
    let (_, shards) = tiny_shards(1);
    let service = RngService::start(shards, RngServiceConfig::default());
    let ticket = service.submit(ClientId(0), Priority::Normal, 128).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let first = loop {
        match ticket.try_wait().expect("never canceled while running") {
            Some(c) => break c,
            None => {
                assert!(Instant::now() < deadline, "request never served");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    };
    assert_eq!(first.bytes.len(), 128);
    // Abort tears down the channels; the served outcome must survive it.
    service.abort();
    let again = ticket.try_wait().expect("served outcome is sticky").expect("still resolved");
    assert_eq!(again.bytes, first.bytes);
    let wd = ticket
        .wait_deadline(Instant::now() + Duration::from_millis(1))
        .expect("still served")
        .expect("still resolved");
    assert_eq!(wd.bytes, first.bytes);
    assert_eq!(ticket.wait().expect("wait agrees with try_wait").bytes, first.bytes);
}

// ---- deadlines, expiry, and degraded-mode admission ----

#[test]
fn queued_requests_expire_within_a_sweep_period_and_committed_work_does_not() {
    // One shard paced to a crawl with single-request batches: the first
    // (deadline-free) request is popped and parks in pacing — *committed*.
    // Everything behind it stays queued; their deadlines pass; the sweep
    // must complete them as Expired without generating a byte.
    const LEN: usize = 256;
    const EXPIRING: usize = 4;
    let (_, shards) = tiny_shards(1);
    let cfg = RngServiceConfig {
        max_batch_requests: 1,
        max_batch_bytes: LEN,
        pacing: IdleBudget::from_gbps(1e-5),
        expiry_sweep_interval: Duration::from_millis(2),
        ..RngServiceConfig::default()
    };
    let service = RngService::start(shards, cfg);
    let sacrificial = service.submit(ClientId(0), Priority::Normal, LEN).unwrap();
    // Give the worker time to pop the sacrificial request into its batch.
    std::thread::sleep(Duration::from_millis(50));
    let deadline = Instant::now() + Duration::from_millis(30);
    let doomed: Vec<_> = (0..EXPIRING)
        .map(|_| {
            service
                .submit_with_deadline(ClientId(1), Priority::Normal, LEN, deadline)
                .expect("admitted while queue has space")
        })
        .collect();
    // wait_deadline bounds its own blocking: while the requests are still
    // queued and unexpired it reports "pending", not an error.
    assert!(
        doomed[0]
            .wait_deadline(Instant::now() + Duration::from_millis(5))
            .expect("still pending, not failed")
            .is_none(),
        "a queued, unexpired request polls as pending"
    );
    for t in &doomed {
        let err = loop {
            match t.wait_deadline(Instant::now() + Duration::from_millis(20)) {
                Ok(Some(_)) => panic!("an expired request must never deliver bytes"),
                Ok(None) => continue,
                Err(e) => break e,
            }
        };
        let expired = match err {
            WaitError::Expired(e) => e,
            WaitError::Canceled(c) => panic!("expired, not canceled: {c}"),
        };
        assert_eq!(expired.deadline, deadline);
        assert!(expired.expired_at >= deadline);
        assert!(
            expired.expired_at - deadline < Duration::from_secs(5),
            "sweep latency {:?} is far beyond the sweep interval",
            expired.expired_at - deadline
        );
        // The terminal state is sticky for expiry too.
        assert!(matches!(t.try_wait(), Err(WaitError::Expired(_))));
    }
    let stats = service.stats();
    assert_eq!(stats.expired_requests, EXPIRING as u64, "{stats:?}");
    // The committed request was popped before its peers expired; it still
    // owes bytes and abort (not expiry) is what ends it here.
    service.abort();
    assert!(sacrificial.wait().is_err());
}

#[test]
fn served_requests_with_deadlines_record_slack_and_never_expire() {
    let (_, shards) = tiny_shards(2);
    let service = RngService::start(shards, RngServiceConfig::default());
    let generous = Instant::now() + Duration::from_secs(3600);
    let tickets: Vec<_> = (0..10)
        .map(|_| {
            service.submit_with_deadline(ClientId(0), Priority::Normal, 512, generous).unwrap()
        })
        .collect();
    for t in tickets {
        assert_eq!(t.wait().expect("a generous deadline never expires").bytes.len(), 512);
    }
    let stats = service.shutdown();
    assert_eq!(stats.expired_requests, 0);
    assert_eq!(stats.completed_requests, 10);
    assert_eq!(
        stats.deadline_slack_us.count(),
        10,
        "every served deadline-carrying request records its slack"
    );
    assert!(stats.deadline_slack_us.max() > 0, "an hour of slack cannot round to zero");
}

#[test]
fn degraded_parking_unblocks_on_policy_timeout() {
    // Park policy with a short bound and a persistent fault: a blocking
    // submit during total quarantine parks, then gives up with the typed
    // Degraded error once the bound passes (readmission never comes).
    let (_, mut shards) = tiny_shards(1);
    shards[0].inject_fault(FaultInjector::stuck_at(0, true));
    let cfg = RngServiceConfig {
        validation: test_validation(),
        degraded: DegradedPolicy::Park { max_wait: Duration::from_millis(200) },
        ..RngServiceConfig::default()
    };
    let service = RngService::start(shards, cfg);
    drive_until_total_quarantine(&service);
    let started = Instant::now();
    let err = service.submit(ClientId(1), Priority::Normal, 512).unwrap_err();
    let parked = started.elapsed();
    assert_eq!(err, SubmitError::Degraded { quarantined: 1 });
    assert!(parked >= Duration::from_millis(150), "gave up after only {parked:?}");
    assert!(parked < Duration::from_secs(30), "parking must respect the policy bound");
    // The non-blocking path never parks, even under the Park policy.
    let quick = Instant::now();
    assert!(service.try_submit(ClientId(1), Priority::Normal, 512).is_err());
    assert!(quick.elapsed() < Duration::from_millis(100));
    let stats = service.abort();
    assert!(stats.degraded_rejections >= 2, "{stats:?}");
}

// ---- deadline-path regressions (parked submits, sweep economy, past deadlines) ----

/// Regression: a blocking submit parked on the in-flight budget must honour
/// its own deadline. Before the fix it waited on the `space` condvar with no
/// timeout, so a budget held by committed work parked the caller forever —
/// long past the deadline it asked for.
#[test]
fn budget_parked_submission_expires_at_its_own_deadline() {
    const LEN: usize = 256;
    let (_, shards) = tiny_shards(1);
    let cfg = RngServiceConfig {
        // The budget admits exactly one request; crawl pacing keeps the
        // worker parked mid-batch with that request's bytes charged, so the
        // budget never frees.
        max_inflight_bytes: LEN,
        max_batch_requests: 1,
        max_batch_bytes: LEN,
        pacing: IdleBudget::from_gbps(1e-5),
        expiry_sweep_interval: Duration::from_millis(2),
        ..RngServiceConfig::default()
    };
    let service = RngService::start(shards, cfg);
    let sacrificial = service.submit(ClientId(0), Priority::Normal, LEN).unwrap();
    // Let the worker pop the sacrificial request and park in pacing.
    std::thread::sleep(Duration::from_millis(50));

    let deadline = Instant::now() + Duration::from_millis(40);
    let started = Instant::now();
    let parked = service
        .submit_with_deadline(ClientId(1), Priority::Normal, LEN, deadline)
        .expect("a parked submission resolves through its ticket, not an error");
    let gave_up_after = started.elapsed();
    assert!(
        gave_up_after < Duration::from_secs(30),
        "submit parked {gave_up_after:?} past its 40ms deadline"
    );
    let expired = match parked.wait() {
        Err(WaitError::Expired(e)) => e,
        other => panic!("a deadline that passed while parked must expire: {other:?}"),
    };
    assert_eq!(expired.deadline, deadline);
    assert!(expired.expired_at >= deadline);

    let stats = service.stats();
    assert_eq!(stats.expired_requests, 1, "{stats:?}");
    // The expired request was never admitted: the budget still holds only
    // the sacrificial request's bytes.
    assert_eq!(service.in_flight_bytes(), LEN);
    service.abort();
    assert!(sacrificial.wait().is_err());
}

/// Regression: the expiry sweep must not wake on general work traffic.
/// Before the fix it waited on the shared `work` condvar, so every
/// admission and batch completion woke it — a wake storm under
/// deadline-free load. It now parks on a dedicated condvar until a
/// deadline-carrying request is admitted.
#[test]
fn expiry_sweep_sleeps_under_deadline_free_load() {
    let (_, shards) = tiny_shards(2);
    let cfg = RngServiceConfig {
        expiry_sweep_interval: Duration::from_millis(2),
        ..RngServiceConfig::default()
    };
    let service = RngService::start(shards, cfg);
    // Plenty of deadline-free traffic: lots of work-condvar notifies.
    for _ in 0..50 {
        let t = service.submit(ClientId(0), Priority::Normal, 512).unwrap();
        t.wait().expect("served");
    }
    std::thread::sleep(Duration::from_millis(50));
    let quiet = service.stats();
    assert_eq!(
        quiet.expiry_sweeps, 0,
        "the sweeper scanned {} times without a deadline in sight",
        quiet.expiry_sweeps
    );

    // A deadline-carrying admission wakes it; the sweep is counted.
    let doomed = service
        .submit_with_deadline(
            ClientId(1),
            Priority::Normal,
            512,
            Instant::now() + Duration::from_millis(5),
        )
        .unwrap();
    // Served or expired — either way the sweeper ran at least once for it,
    // unless the worker served it before the first sweep fired.
    let _ = doomed.wait();
    let after = wait_for(&service, Duration::from_secs(10), "first sweep", |s| {
        s.expiry_sweeps > 0 || s.completed_requests == 51
    });
    // Once no deadlines remain queued, the sweeper parks again: the scan
    // counter settles instead of ticking every interval.
    std::thread::sleep(Duration::from_millis(20));
    let settled = service.stats().expiry_sweeps;
    std::thread::sleep(Duration::from_millis(100));
    let later = service.stats().expiry_sweeps;
    assert!(
        later <= settled + 1,
        "sweeper kept scanning an empty deadline set: {settled} -> {later} (after: {after:?})"
    );
    service.shutdown();
}

/// Regression: a deadline already in the past must resolve at admission —
/// typed, immediate, never charged. Before the fix the request was
/// admitted, placed, and budget-charged, then waited one full sweep to be
/// unwound.
#[test]
fn already_past_deadlines_resolve_at_admission_without_being_charged() {
    let (_, shards) = tiny_shards(2);
    let service = RngService::start(shards, RngServiceConfig::default());
    let stale = Instant::now() - Duration::from_millis(10);

    for attempt in 0..2u8 {
        let started = Instant::now();
        let ticket = if attempt == 0 {
            service.submit_with_deadline(ClientId(0), Priority::Normal, 1024, stale).unwrap()
        } else {
            service.try_submit_with_deadline(ClientId(0), Priority::Normal, 1024, stale).unwrap()
        };
        let expired = match ticket.wait() {
            Err(WaitError::Expired(e)) => e,
            other => panic!("a stale deadline must expire at admission: {other:?}"),
        };
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "resolution must not wait for a sweep"
        );
        assert_eq!(expired.deadline, stale);
        assert!(expired.expired_at >= stale);
    }

    let stats = service.stats();
    assert_eq!(stats.expired_requests, 2, "{stats:?}");
    assert_eq!(stats.completed_requests, 0);
    assert_eq!(service.in_flight_bytes(), 0, "a stale request must never be charged");
    // The service still serves: the rejections left no residue behind.
    let served = service.submit(ClientId(0), Priority::Normal, 64).unwrap();
    assert_eq!(served.wait().expect("served").bytes.len(), 64);
    service.shutdown();
}

/// Control-plane seam: a custom placement policy injected through
/// `start_with_policies` owns shard assignment — and placement stays a pure
/// function of the view it is handed.
#[test]
fn custom_placement_policy_owns_shard_assignment() {
    use quac_trng_repro::rng_service::placement::{PlacementPolicy, PlacementView};
    use quac_trng_repro::rng_service::ServicePolicies;

    #[derive(Debug)]
    struct PinToZero;
    impl PlacementPolicy for PinToZero {
        fn place(&self, _view: &PlacementView<'_>) -> usize {
            0
        }
    }

    let (model, shards) = tiny_shards(3);
    let cfg = RngServiceConfig::default();
    let mut policies = ServicePolicies::for_config(&cfg);
    policies.placement = Box::new(PinToZero);
    let service = RngService::start_with_policies(shards, cfg, policies);
    let completions: Vec<Completion> = (0..12)
        .map(|_| {
            let t = service.submit(ClientId(0), Priority::Normal, 512).unwrap();
            t.wait().expect("served")
        })
        .collect();
    assert!(completions.iter().all(|c| c.shard == 0), "every request pinned to shard 0");
    // The pinned shard's stream is still the bit-identical reference.
    let mut sorted = completions;
    sorted.sort_by_key(|c| c.stream_offset);
    let stream: Vec<u8> = sorted.into_iter().flat_map(|c| c.bytes).collect();
    assert_eq!(stream, reference_stream(&model, 0, stream.len()));
    let stats = service.shutdown();
    assert_eq!(stats.per_shard_bytes[0], 12 * 512);
    assert_eq!(stats.per_shard_bytes[1], 0);
    assert_eq!(stats.per_shard_bytes[2], 0);
}

mod deadline_props {
    use super::*;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    /// One service shared by all proptest cases: a single shard parked in
    /// crawl pacing on a sacrificial request, so every deadline-carrying
    /// submission behind it must resolve through the expiry machinery —
    /// whether it queues (sweep) or parks on the budget (bounded wait).
    fn parked_service() -> &'static RngService {
        static SERVICE: OnceLock<RngService> = OnceLock::new();
        SERVICE.get_or_init(|| {
            let (_, shards) = tiny_shards(1);
            let cfg = RngServiceConfig {
                max_inflight_bytes: 64 << 10,
                max_batch_requests: 1,
                max_batch_bytes: 256,
                // ~2000s per 256-byte batch: parks the worker for the whole
                // 256-case run (1e-5 would resume it after only 0.2s).
                pacing: IdleBudget::from_gbps(1e-9),
                expiry_sweep_interval: Duration::from_millis(2),
                ..RngServiceConfig::default()
            };
            let service = RngService::start(shards, cfg);
            let _sacrificial = service.submit(ClientId(0), Priority::Normal, 256).unwrap();
            std::thread::sleep(Duration::from_millis(50));
            service
        })
    }

    proptest! {
        /// No deadline-carrying submission outlives its bound by more than
        /// one sweep interval (plus scheduling slop): not the queued-then-
        /// swept path, not the budget-parked path, and not `wait_deadline`
        /// itself.
        #[test]
        fn prop_deadlines_bound_every_blocking_path(
            len in 1usize..2048,
            offset_ms in 0u64..10,
        ) {
            // Generous CI slop on top of the 2ms sweep interval; the
            // pre-fix failure modes were unbounded (a forever-parked
            // submit) or a full extra sweep cycle, both far beyond this.
            let slop = Duration::from_millis(500);
            let service = parked_service();
            let deadline = Instant::now() + Duration::from_millis(offset_ms);
            let submitted = Instant::now();
            let ticket = service
                .submit_with_deadline(ClientId(1), Priority::Normal, len, deadline)
                .expect("nothing in this setup rejects an admission");
            prop_assert!(
                submitted.elapsed() <= Duration::from_millis(offset_ms) + slop,
                "submit blocked {:?} against a {offset_ms}ms deadline",
                submitted.elapsed()
            );
            // wait_deadline returns by its own bound even while pending.
            let poll_bound = Instant::now() + Duration::from_millis(3);
            let poll = Instant::now();
            let first = ticket.wait_deadline(poll_bound);
            prop_assert!(
                poll.elapsed() <= Duration::from_millis(3) + slop,
                "wait_deadline blocked {:?} past its bound",
                poll.elapsed()
            );
            let expired = match first {
                Err(WaitError::Expired(e)) => e,
                Ok(_) | Err(WaitError::Canceled(_)) => {
                    // Still pending (or resolved Served — impossible with a
                    // parked worker): wait out the terminal state.
                    match ticket.wait() {
                        Err(WaitError::Expired(e)) => e,
                        other => {
                            return Err(TestCaseError::Fail(format!(
                                "parked worker cannot serve: {other:?}"
                            )))
                        }
                    }
                }
            };
            prop_assert!(
                submitted.elapsed()
                    <= Duration::from_millis(offset_ms + 2) + slop,
                "resolution took {:?} for a {offset_ms}ms deadline",
                submitted.elapsed()
            );
            prop_assert!(expired.expired_at >= deadline);
            prop_assert!(
                expired.expired_at - deadline <= Duration::from_millis(2) + slop,
                "expiry overshot its deadline by {:?}",
                expired.expired_at - deadline
            );
        }
    }
}
