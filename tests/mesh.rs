//! Integration suite for the **entropy mesh**: heterogeneous backends
//! ([`QuacTrng`], [`DRangeTrng`], [`RetentionTrng`]) behind one service,
//! tiered placement by priority, cross-source mixing, and the
//! cross-correlation health check — each pinned to the replay-determinism
//! contract (per-backend streams bit-identical to serial references).

use quac_trng_repro::baselines::{DRangeTrng, RetentionTrng};
use quac_trng_repro::dram_analog::{
    FailureModel, ModuleVariation, OperatingConditions, QuacAnalogModel, RetentionModel,
};
use quac_trng_repro::dram_core::{DataPattern, DramGeometry};
use quac_trng_repro::rng_service::mixer::mix_reference;
use quac_trng_repro::rng_service::{
    ClientId, Completion, CorrelationConfig, HealthPolicy, Priority, RngService,
    RngServiceConfig, ServiceStats, SubmitError, ValidationConfig,
};
use quac_trng_repro::trng::characterize::{characterize_module, CharacterizationConfig};
use quac_trng_repro::trng::pipeline::{shard_seed, QuacTrng};
use quac_trng_repro::trng::{BackendKind, EntropyBackend};
use std::time::{Duration, Instant};

const BASE_SEED: u64 = 0x3E5E_00D0;
const DRANGE_SEED: u64 = 0xD7A6;
const RETENTION_SEED: u64 = 0x7A1D;

fn characterization() -> CharacterizationConfig {
    CharacterizationConfig {
        segment_stride: 1,
        bitline_stride: 1,
        conditions: OperatingConditions::nominal(),
    }
}

fn quac_model() -> QuacAnalogModel {
    let geom = DramGeometry::tiny_test();
    QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8))
}

fn quac_backend(model: &QuacAnalogModel) -> QuacTrng {
    let ch = characterize_module(model, DataPattern::best_average(), &characterization());
    QuacTrng::with_characterization(model.clone(), ch, shard_seed(BASE_SEED, 0))
}

fn drange_backend() -> DRangeTrng {
    let geom = DramGeometry::tiny_test();
    let failures = FailureModel::new(ModuleVariation::generate(&geom, 8));
    DRangeTrng::new(&failures, &geom, DRANGE_SEED)
}

fn retention_backend() -> RetentionTrng {
    let geom = DramGeometry::tiny_test();
    let retention = RetentionModel::new(ModuleVariation::generate(&geom, 8));
    RetentionTrng::new(&retention, &geom, RETENTION_SEED)
}

/// The standard three-tier mesh: shard 0 QUAC, shard 1 D-RaNGe, shard 2
/// retention — all seeded, so every shard has a serial reference twin.
fn mesh_backends(model: &QuacAnalogModel) -> Vec<Box<dyn EntropyBackend>> {
    vec![
        Box::new(quac_backend(model)),
        Box::new(drange_backend()),
        Box::new(retention_backend()),
    ]
}

/// Reassembles one shard's epoch-0 stream from its completions, checking
/// the gapless-tiling invariant.
fn reassemble_shard(completions: &[Completion], shard: usize) -> Vec<u8> {
    let mut chunks: Vec<&Completion> =
        completions.iter().filter(|c| c.shard == shard && c.epoch == 0).collect();
    chunks.sort_by_key(|c| c.stream_offset);
    let mut stream = Vec::new();
    for c in chunks {
        assert_eq!(
            c.stream_offset as usize,
            stream.len(),
            "shard {shard}: completions must tile the stream with no gap or overlap"
        );
        stream.extend_from_slice(&c.bytes);
    }
    stream
}

#[test]
fn mesh_routes_by_priority_across_tiers() {
    let model = quac_model();
    let service = RngService::start_mesh(mesh_backends(&model), RngServiceConfig::default());
    let stats = service.stats();
    assert_eq!(
        stats.backend_kinds,
        vec![BackendKind::Quac, BackendKind::DRange, BackendKind::Retention],
        "the snapshot must carry each shard's backend kind"
    );
    // One request at a time, so placement always sees a settled load view:
    // latency-sensitive work goes to the D-RaNGe shard, bulk to QUAC; the
    // retention tier is the last resort and serves neither.
    for _ in 0..4 {
        let c = service.submit(ClientId(0), Priority::High, 512).unwrap().wait().unwrap();
        assert_eq!(c.shard, 1, "High priority must route to the D-RaNGe tier");
        let c = service.submit(ClientId(0), Priority::Normal, 512).unwrap().wait().unwrap();
        assert_eq!(c.shard, 0, "Normal priority must route to the QUAC tier");
    }
    let stats = service.shutdown();
    assert_eq!(stats.per_shard_bytes[2], 0, "retention is last-resort only");
}

#[test]
fn mesh_streams_stay_bit_identical_to_per_backend_serial_references() {
    let model = quac_model();
    let service = RngService::start_mesh(mesh_backends(&model), RngServiceConfig::default());
    let mut completions = Vec::new();
    for i in 0..24 {
        let priority = if i % 2 == 0 { Priority::High } else { Priority::Normal };
        let t = service.submit(ClientId(i % 3), priority, 640 + (i as usize % 5) * 64).unwrap();
        completions.push(t.wait().expect("served"));
    }
    service.shutdown();
    // Each serving backend's reassembled epoch-0 stream is exactly the
    // prefix its identically-seeded serial twin emits.
    let quac = reassemble_shard(&completions, 0);
    assert!(!quac.is_empty());
    assert_eq!(quac, quac_backend(&model).generate_bytes(quac.len()));
    let drange = reassemble_shard(&completions, 1);
    assert!(!drange.is_empty());
    assert_eq!(drange, drange_backend().generate_bytes(drange.len()));
}

#[test]
fn a_retention_only_mesh_serves_through_the_last_tier() {
    // Both faster tiers absent: tiered placement falls through to the
    // retention shard, which must serve (slow and bursty, but correct) and
    // stay bit-identical to its serial reference.
    let service = RngService::start_mesh(
        vec![Box::new(retention_backend())],
        RngServiceConfig::default(),
    );
    let mut completions = Vec::new();
    for _ in 0..8 {
        let t = service.submit(ClientId(0), Priority::High, 768).unwrap();
        completions.push(t.wait().expect("served by the retention tier"));
    }
    service.shutdown();
    let stream = reassemble_shard(&completions, 0);
    assert_eq!(stream.len(), 8 * 768);
    assert_eq!(stream, retention_backend().generate_bytes(stream.len()));
}

#[test]
fn submit_mixed_conditions_two_independent_sources() {
    let model = quac_model();
    let service = RngService::start_mesh(mesh_backends(&model), RngServiceConfig::default());
    for len in [1usize, 100, 256, 1000] {
        let ticket = service.submit_mixed(ClientId(5), Priority::Normal, len).unwrap();
        let mixed = ticket.wait().expect("both halves served");
        assert_eq!(mixed.bytes.len(), len);
        // Distinct backend kinds, by the fixed QUAC → D-RaNGe order.
        assert_eq!(mixed.first.shard, 0);
        assert_eq!(mixed.second.shard, 1);
        // The reference twin: XOR-fold + scalar SHA-256 over the two source
        // streams reproduces the mixed bytes bit for bit.
        let mut reference = mix_reference(&mixed.first.bytes, &mixed.second.bytes);
        reference.truncate(len);
        assert_eq!(mixed.bytes, reference);
    }
    service.shutdown();
}

#[test]
fn submit_mixed_requires_two_distinct_serving_kinds() {
    // A homogeneous QUAC mesh serves plain submissions but cannot vouch for
    // multi-source independence.
    let model = quac_model();
    let ch = characterize_module(&model, DataPattern::best_average(), &characterization());
    let backends: Vec<Box<dyn EntropyBackend>> = QuacTrng::shards(&model, &ch, BASE_SEED, 2)
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn EntropyBackend>)
        .collect();
    let service = RngService::start_mesh(backends, RngServiceConfig::default());
    assert_eq!(
        service.submit_mixed(ClientId(0), Priority::Normal, 64).unwrap_err(),
        SubmitError::NoIndependentSources { serving_kinds: 1 }
    );
    // Plain submission still works.
    let c = service.submit(ClientId(0), Priority::Normal, 64).unwrap().wait().unwrap();
    assert_eq!(c.bytes.len(), 64);
    service.shutdown();
}

fn wait_for(
    service: &RngService,
    timeout: Duration,
    what: &str,
    predicate: impl Fn(&ServiceStats) -> bool,
) -> ServiceStats {
    let deadline = Instant::now() + timeout;
    loop {
        let stats = service.stats();
        if predicate(&stats) {
            return stats;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}: {stats:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn correlation_check_quarantines_common_mode_backends() {
    // Two QUAC shards with the *same* seed: a common-mode fault no
    // individual-stream battery can see (each stream passes on its own).
    // The cross-correlation monitor must trip and fence both.
    let model = quac_model();
    let ch = characterize_module(&model, DataPattern::best_average(), &characterization());
    let twin = || {
        Box::new(QuacTrng::with_characterization(model.clone(), ch.clone(), 0xC0_11E1))
            as Box<dyn EntropyBackend>
    };
    let validation = ValidationConfig {
        enabled: true,
        lossless_tap: true,
        // A forgiving battery policy: only the correlation check may fence.
        policy: HealthPolicy { min_pass_ewma: 0.0, max_consecutive_failures: 1000, ..HealthPolicy::default() },
        recharacterization: characterization(),
        correlation: CorrelationConfig::enabled(),
        ..ValidationConfig::default()
    };
    let cfg = RngServiceConfig { validation, ..RngServiceConfig::default() };
    let service = RngService::start_mesh(vec![twin(), twin()], cfg);
    // Alternating submissions feed both shards the same stream.
    let give_up = Instant::now() + Duration::from_secs(120);
    loop {
        let stats = service.stats();
        if stats.validation.correlation_trips >= 1 {
            break;
        }
        assert!(Instant::now() < give_up, "correlation check never tripped: {stats:?}");
        match service.try_submit(ClientId(0), Priority::Normal, 2048) {
            // Dropping the ticket is safe: the request is still served (and
            // tapped) without anyone blocking on a fence-stranded reply.
            Ok(t) => drop(t),
            // Both fenced (or budget-full) between poll and submit: re-poll.
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    let stats = wait_for(&service, Duration::from_secs(60), "both twins fenced", |s| {
        s.validation.quarantines >= 2
    });
    assert!(stats.validation.correlation_windows >= 1);
    assert!(stats.validation.correlation_trips >= 1);
    service.abort();
}

#[test]
fn independent_backends_never_trip_the_correlation_check() {
    let model = quac_model();
    let validation = ValidationConfig {
        enabled: true,
        lossless_tap: true,
        recharacterization: characterization(),
        correlation: CorrelationConfig::enabled(),
        ..ValidationConfig::default()
    };
    let cfg = RngServiceConfig { validation, ..RngServiceConfig::default() };
    let service = RngService::start_mesh(mesh_backends(&model), cfg);
    for i in 0..32 {
        let priority = if i % 2 == 0 { Priority::High } else { Priority::Normal };
        let t = service.submit(ClientId(0), priority, 2048).unwrap();
        t.wait().expect("served");
    }
    let stats = service.shutdown();
    assert!(stats.validation.correlation_windows >= 1, "windows must have been compared");
    assert_eq!(stats.validation.correlation_trips, 0, "independent streams must not trip");
    assert_eq!(stats.validation.quarantines, 0);
}
