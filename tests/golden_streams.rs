//! Golden-stream regression tests: SHA-256 digests of the generator's
//! output, pinned for fixed `(module, noise seed)` pairs.
//!
//! The generator's byte stream is a versioned contract: replay determinism
//! across machines and releases is what makes the sharded service's
//! validation and fault attribution reproducible. These digests pin the
//! stream produced by the bit-sliced sampling + batched-SHA pipeline; any
//! change to noise consumption order, lane packing, or digest batching shows
//! up here as a one-line diff. If a stream change is *intentional* (it is a
//! breaking change — say so in the changelog), regenerate the constants by
//! hashing the first MiB / 64 KiB per configuration below.

use quac_trng_repro::crypto::Sha256;
use quac_trng_repro::dram_analog::{
    ModuleVariation, OperatingConditions, QuacAnalogModel, PAPER_MODULES,
};
use quac_trng_repro::dram_core::{DataPattern, DramGeometry};
use quac_trng_repro::trng::characterize::{characterize_module, CharacterizationConfig};
use quac_trng_repro::trng::pipeline::QuacTrng;

fn hex(digest: &[u8]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

fn tiny_cfg() -> CharacterizationConfig {
    CharacterizationConfig {
        segment_stride: 1,
        bitline_stride: 1,
        conditions: OperatingConditions::nominal(),
    }
}

fn tiny_trng(variation_seed: u64, noise_seed: u64) -> QuacTrng {
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, variation_seed));
    QuacTrng::from_model(model, tiny_cfg(), noise_seed)
}

/// Hashes the first `len` bytes of the generator's stream.
fn stream_digest(trng: &mut QuacTrng, len: usize) -> String {
    hex(&Sha256::digest(&trng.generate_bytes(len)))
}

const MIB: usize = 1 << 20;

#[test]
fn golden_first_mib_tiny_module_seed_13() {
    let mut t = tiny_trng(8, 13);
    assert_eq!(
        stream_digest(&mut t, MIB),
        "4d4bd08a8eab937f40f5e1f0292f035a4510eb84102fb0b9dfb663f3391bb4b4",
    );
}

#[test]
fn golden_first_mib_tiny_module_seed_99() {
    let mut t = tiny_trng(21, 99);
    assert_eq!(
        stream_digest(&mut t, MIB),
        "baae97ad5eb63e82e69ed0a06a1b6d9ecb774f373fc9119a896a952fe56ffd51",
    );
}

#[test]
fn golden_first_mib_paper_module_m1() {
    let mut t = QuacTrng::for_module(&PAPER_MODULES[0], 3);
    assert_eq!(
        stream_digest(&mut t, MIB),
        "4ea30f017fdcbdf64ab16a2217418b8eb3b31dee44eaf4d12c23dabd14c67224",
    );
}

#[test]
fn golden_first_mib_paper_module_m2() {
    let mut t = QuacTrng::for_module(&PAPER_MODULES[1], 7);
    assert_eq!(
        stream_digest(&mut t, MIB),
        "8d6d54757b3d7151c5a1a41511f3fab41bdfdf81d2fa58e76758e5113264766f",
    );
}

#[test]
fn golden_per_shard_service_streams() {
    // The sharded service serves each client from one shard; shard streams
    // are a pure function of (module, base_seed, shard index). 64 KiB each.
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
    let ch = characterize_module(&model, DataPattern::best_average(), &tiny_cfg());
    let shards = QuacTrng::shards(&model, &ch, 7, 4);
    let expected = [
        "867ca881869d7be1e2da484782f1d9f7b3276e0fdbade63b20fbcf1c8e59c039",
        "36c514469d3e27fd42770ac2ddb733e0f98ff1c892738b616d32016469753e88",
        "bd8e8c19734ef665b5a9d55df613c93852aef706ef1d8f4588e496d6b2c08ea2",
        "40a58d0f176d96a65665e7f9735fd01c4ec49ef0c3f55b7f4fc320838b0ce2b0",
    ];
    for (i, mut shard) in shards.into_iter().enumerate() {
        assert_eq!(stream_digest(&mut shard, 64 << 10), expected[i], "shard {i}");
    }
}

#[test]
fn golden_streams_are_identical_through_the_reference_fill_path() {
    // The batched hot path and the frozen scalar twin must both reproduce
    // the pinned stream (the digests above pin the *contract*, not one
    // implementation).
    let mut reference = tiny_trng(8, 13);
    let mut bytes = vec![0u8; 64 << 10];
    reference.fill_bytes_reference(&mut bytes);
    let mut fast = tiny_trng(8, 13);
    assert_eq!(fast.generate_bytes(64 << 10), bytes);
}
