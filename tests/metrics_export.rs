//! Golden-format test of the Prometheus text exposition
//! (`qt_rng_service::export`): the rendered snapshot is pinned byte for
//! byte, so any drift in metric names, label syntax, HELP text, or the
//! log2-bucket cumulative-edge scheme fails here before it breaks a
//! scrape pipeline downstream. A live-service test then checks that a
//! real snapshot renders consistently with its own counters.

use quac_trng_repro::dram_analog::{ModuleVariation, OperatingConditions, QuacAnalogModel};
use quac_trng_repro::dram_core::{DataPattern, DramGeometry};
use quac_trng_repro::rng_service::export::prometheus_text;
use quac_trng_repro::rng_service::{
    ClientId, EntropyLedger, Priority, RngService, RngServiceConfig, ServiceStats, ShardHealth,
    ShardState, ValidationStats,
};
use quac_trng_repro::trng::characterize::{characterize_module, CharacterizationConfig};
use quac_trng_repro::trng::pipeline::QuacTrng;
use quac_trng_repro::trng::BackendKind;

/// A snapshot with every counter family populated, built by hand so the
/// expected exposition is a constant.
fn golden_stats() -> ServiceStats {
    let mut stats = ServiceStats {
        completed_requests: 3,
        completed_bytes: 768,
        peak_in_flight_bytes: 4096,
        per_shard_bytes: vec![512, 256],
        expired_requests: 1,
        expiry_sweeps: 2,
        failed_over_requests: 4,
        degraded_rejections: 5,
        rate_limited_rejections: 6,
        mixed_halves_abandoned: 2,
        per_shard_ledger: vec![
            EntropyLedger {
                fresh_bits_drawn: 20000,
                fresh_bits_claimed: 11520,
                conditioned_bytes_served: 512,
            },
            EntropyLedger {
                fresh_bits_drawn: 10000,
                fresh_bits_claimed: 4096,
                conditioned_bytes_served: 256,
            },
        ],
        validation: ValidationStats {
            bytes_tapped: 700,
            bytes_dropped: 68,
            windows_validated: 6,
            windows_failed: 1,
            quarantines: 1,
            recharacterizations: 1,
            probation_windows: 2,
            readmissions: 1,
            correlation_windows: 9,
            correlation_trips: 1,
        },
        ..Default::default()
    };
    stats.queue_depth.record(0);
    stats.queue_depth.record(1);
    stats.queue_depth.record(2);
    stats.latency_us.record(10);
    stats.latency_us.record(700);
    stats.deadline_slack_us.record(250);
    let mut fenced = ShardHealth::new();
    fenced.state = ShardState::Quarantined;
    fenced.quarantines = 1;
    fenced.pass_ewma = 0.5;
    stats.shard_health = vec![ShardHealth::new(), fenced];
    stats.backend_kinds = vec![BackendKind::Quac, BackendKind::DRange];
    stats
}

const GOLDEN: &str = r#"# HELP qt_rng_completed_requests_total Requests completed (delivered to their tickets).
# TYPE qt_rng_completed_requests_total counter
qt_rng_completed_requests_total 3
# HELP qt_rng_completed_bytes_total Random bytes delivered.
# TYPE qt_rng_completed_bytes_total counter
qt_rng_completed_bytes_total 768
# HELP qt_rng_expired_requests_total Requests completed with a typed Expired outcome (bytes never generated).
# TYPE qt_rng_expired_requests_total counter
qt_rng_expired_requests_total 1
# HELP qt_rng_expiry_sweeps_total Scans the expiry-sweep thread ran (0 under deadline-free load).
# TYPE qt_rng_expiry_sweeps_total counter
qt_rng_expiry_sweeps_total 2
# HELP qt_rng_failed_over_requests_total Queued requests re-placed from a quarantined shard onto a healthy one.
# TYPE qt_rng_failed_over_requests_total counter
qt_rng_failed_over_requests_total 4
# HELP qt_rng_degraded_rejections_total Submissions rejected because every shard was quarantined.
# TYPE qt_rng_degraded_rejections_total counter
qt_rng_degraded_rejections_total 5
# HELP qt_rng_rate_limited_rejections_total Submissions rejected by the per-tenant QoS policy (token bucket empty).
# TYPE qt_rng_rate_limited_rejections_total counter
qt_rng_rate_limited_rejections_total 6
# HELP qt_rng_mixed_halves_abandoned_total Mixed-submission halves that delivered bytes while their sibling failed (generated, then discarded).
# TYPE qt_rng_mixed_halves_abandoned_total counter
qt_rng_mixed_halves_abandoned_total 2
# HELP qt_rng_peak_in_flight_bytes High-water mark of in-flight bytes.
# TYPE qt_rng_peak_in_flight_bytes gauge
qt_rng_peak_in_flight_bytes 4096
# HELP qt_rng_shard_delivered_bytes_total Bytes delivered by each shard.
# TYPE qt_rng_shard_delivered_bytes_total counter
qt_rng_shard_delivered_bytes_total{shard="0",backend="quac"} 512
qt_rng_shard_delivered_bytes_total{shard="1",backend="drange"} 256
# HELP qt_rng_shard_fresh_bits_drawn_total Raw fresh entropy bits the shard's backend drew from its physical source.
# TYPE qt_rng_shard_fresh_bits_drawn_total counter
qt_rng_shard_fresh_bits_drawn_total{shard="0",backend="quac"} 20000
qt_rng_shard_fresh_bits_drawn_total{shard="1",backend="drange"} 10000
# HELP qt_rng_shard_fresh_bits_claimed_total Fresh bits attributed to completions served by the shard (never exceeds the drawn total).
# TYPE qt_rng_shard_fresh_bits_claimed_total counter
qt_rng_shard_fresh_bits_claimed_total{shard="0",backend="quac"} 11520
qt_rng_shard_fresh_bits_claimed_total{shard="1",backend="drange"} 4096
# HELP qt_rng_shard_conditioned_bytes_served_total Conditioned bytes the shard's worker generated into completions.
# TYPE qt_rng_shard_conditioned_bytes_served_total counter
qt_rng_shard_conditioned_bytes_served_total{shard="0",backend="quac"} 512
qt_rng_shard_conditioned_bytes_served_total{shard="1",backend="drange"} 256
# HELP qt_rng_validation_bytes_tapped_total Served bytes copied into the validator tap.
# TYPE qt_rng_validation_bytes_tapped_total counter
qt_rng_validation_bytes_tapped_total 700
# HELP qt_rng_validation_bytes_dropped_total Served bytes that bypassed validation (lossy tap).
# TYPE qt_rng_validation_bytes_dropped_total counter
qt_rng_validation_bytes_dropped_total 68
# HELP qt_rng_validation_windows_validated_total Served windows the battery graded.
# TYPE qt_rng_validation_windows_validated_total counter
qt_rng_validation_windows_validated_total 6
# HELP qt_rng_validation_windows_failed_total Served windows that failed the battery.
# TYPE qt_rng_validation_windows_failed_total counter
qt_rng_validation_windows_failed_total 1
# HELP qt_rng_validation_quarantines_total Quarantine transitions.
# TYPE qt_rng_validation_quarantines_total counter
qt_rng_validation_quarantines_total 1
# HELP qt_rng_validation_recharacterizations_total Recharacterisations run by quarantined shards.
# TYPE qt_rng_validation_recharacterizations_total counter
qt_rng_validation_recharacterizations_total 1
# HELP qt_rng_validation_probation_windows_total Probation windows generated and graded during requalification.
# TYPE qt_rng_validation_probation_windows_total counter
qt_rng_validation_probation_windows_total 2
# HELP qt_rng_validation_readmissions_total Readmissions after a passed probation.
# TYPE qt_rng_validation_readmissions_total counter
qt_rng_validation_readmissions_total 1
# HELP qt_rng_validation_correlation_windows_total Same-index window pairs compared by the cross-correlation monitor.
# TYPE qt_rng_validation_correlation_windows_total counter
qt_rng_validation_correlation_windows_total 9
# HELP qt_rng_validation_correlation_trips_total Shard pairs force-quarantined for inter-backend correlation.
# TYPE qt_rng_validation_correlation_trips_total counter
qt_rng_validation_correlation_trips_total 1
# HELP qt_rng_shard_serving 1 while the shard is in placement (healthy), 0 while fenced.
# TYPE qt_rng_shard_serving gauge
qt_rng_shard_serving{shard="0",backend="quac"} 1
qt_rng_shard_serving{shard="1",backend="drange"} 0
# HELP qt_rng_shard_pass_ewma Pass-rate EWMA of the shard's validated windows.
# TYPE qt_rng_shard_pass_ewma gauge
qt_rng_shard_pass_ewma{shard="0",backend="quac"} 1
qt_rng_shard_pass_ewma{shard="1",backend="drange"} 0.5
# HELP qt_rng_shard_quarantines_total Times the shard was quarantined.
# TYPE qt_rng_shard_quarantines_total counter
qt_rng_shard_quarantines_total{shard="0",backend="quac"} 0
qt_rng_shard_quarantines_total{shard="1",backend="drange"} 1
# HELP qt_rng_shard_readmissions_total Times the shard was readmitted after probation.
# TYPE qt_rng_shard_readmissions_total counter
qt_rng_shard_readmissions_total{shard="0",backend="quac"} 0
qt_rng_shard_readmissions_total{shard="1",backend="drange"} 0
# HELP qt_rng_queue_depth Queue depth (requests waiting on the chosen shard) sampled at each admission.
# TYPE qt_rng_queue_depth histogram
qt_rng_queue_depth_bucket{le="0"} 1
qt_rng_queue_depth_bucket{le="1"} 2
qt_rng_queue_depth_bucket{le="3"} 3
qt_rng_queue_depth_bucket{le="+Inf"} 3
qt_rng_queue_depth_sum 3
qt_rng_queue_depth_count 3
# HELP qt_rng_latency_us Request latency (submission to delivery) in microseconds.
# TYPE qt_rng_latency_us histogram
qt_rng_latency_us_bucket{le="0"} 0
qt_rng_latency_us_bucket{le="1"} 0
qt_rng_latency_us_bucket{le="3"} 0
qt_rng_latency_us_bucket{le="7"} 0
qt_rng_latency_us_bucket{le="15"} 1
qt_rng_latency_us_bucket{le="31"} 1
qt_rng_latency_us_bucket{le="63"} 1
qt_rng_latency_us_bucket{le="127"} 1
qt_rng_latency_us_bucket{le="255"} 1
qt_rng_latency_us_bucket{le="511"} 1
qt_rng_latency_us_bucket{le="1023"} 2
qt_rng_latency_us_bucket{le="+Inf"} 2
qt_rng_latency_us_sum 710
qt_rng_latency_us_count 2
# HELP qt_rng_deadline_slack_us Microseconds left until the deadline at delivery, for served requests that carried one.
# TYPE qt_rng_deadline_slack_us histogram
qt_rng_deadline_slack_us_bucket{le="0"} 0
qt_rng_deadline_slack_us_bucket{le="1"} 0
qt_rng_deadline_slack_us_bucket{le="3"} 0
qt_rng_deadline_slack_us_bucket{le="7"} 0
qt_rng_deadline_slack_us_bucket{le="15"} 0
qt_rng_deadline_slack_us_bucket{le="31"} 0
qt_rng_deadline_slack_us_bucket{le="63"} 0
qt_rng_deadline_slack_us_bucket{le="127"} 0
qt_rng_deadline_slack_us_bucket{le="255"} 1
qt_rng_deadline_slack_us_bucket{le="+Inf"} 1
qt_rng_deadline_slack_us_sum 250
qt_rng_deadline_slack_us_count 1
"#;

#[test]
fn exposition_format_is_pinned_byte_for_byte() {
    assert_eq!(prometheus_text(&golden_stats()), GOLDEN);
}

#[test]
fn live_service_snapshot_renders_consistently() {
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
    let ccfg = CharacterizationConfig {
        segment_stride: 1,
        bitline_stride: 1,
        conditions: OperatingConditions::nominal(),
    };
    let ch = characterize_module(&model, DataPattern::best_average(), &ccfg);
    let service = RngService::start(
        QuacTrng::shards(&model, &ch, 7, 2),
        RngServiceConfig::default(),
    );
    for _ in 0..5 {
        let t = service.submit(ClientId(0), Priority::Normal, 512).unwrap();
        t.wait().expect("served");
    }
    let stats = service.stats();
    let text = prometheus_text(&stats);

    // Scalar series match the snapshot they were rendered from.
    let value = |name: &str| -> f64 {
        text.lines()
            .find(|l| !l.starts_with('#') && l.split(' ').next() == Some(name))
            .unwrap_or_else(|| panic!("missing series {name}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .expect("numeric value")
    };
    assert_eq!(
        value("qt_rng_completed_requests_total") as u64,
        stats.completed_requests
    );
    assert_eq!(
        value("qt_rng_completed_bytes_total") as u64,
        stats.completed_bytes
    );
    assert_eq!(
        value("qt_rng_expiry_sweeps_total"),
        0.0,
        "deadline-free load never sweeps"
    );
    assert_eq!(
        value("qt_rng_latency_us_count") as u64,
        stats.latency_us.count()
    );
    assert_eq!(
        value("qt_rng_latency_us_sum") as u64,
        stats.latency_us.sum()
    );
    // Per-shard delivered bytes cover both shards and sum to the total; a
    // homogeneous QUAC service labels every shard backend="quac".
    let shard_total: u64 = (0..2)
        .map(|s| {
            value(&format!(
                "qt_rng_shard_delivered_bytes_total{{shard=\"{s}\",backend=\"quac\"}}"
            )) as u64
        })
        .sum();
    assert_eq!(shard_total, stats.completed_bytes);
    // The entropy ledger exports per shard, and a live snapshot never
    // claims more fresh bits than it drew.
    for s in 0..2 {
        let drawn = value(&format!(
            "qt_rng_shard_fresh_bits_drawn_total{{shard=\"{s}\",backend=\"quac\"}}"
        ));
        let claimed = value(&format!(
            "qt_rng_shard_fresh_bits_claimed_total{{shard=\"{s}\",backend=\"quac\"}}"
        ));
        assert!(
            claimed <= drawn,
            "shard {s}: claimed {claimed} fresh bits of {drawn} drawn"
        );
    }
    // A live snapshot carries health records, so the per-shard gauges are on.
    assert_eq!(
        value("qt_rng_shard_serving{shard=\"0\",backend=\"quac\"}"),
        1.0
    );
    assert_eq!(
        value("qt_rng_shard_serving{shard=\"1\",backend=\"quac\"}"),
        1.0
    );
    // The +Inf bucket of every histogram equals its _count line.
    for name in [
        "qt_rng_queue_depth",
        "qt_rng_latency_us",
        "qt_rng_deadline_slack_us",
    ] {
        assert_eq!(
            value(&format!("{name}_bucket{{le=\"+Inf\"}}")),
            value(&format!("{name}_count")),
            "{name}: +Inf bucket must carry the full count"
        );
    }
    service.shutdown();
}
