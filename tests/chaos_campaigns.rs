//! Seeded chaos campaigns against the live threaded service: environmental
//! drift, burst erasures, stuck pins, and multi-shard loss, each asserting
//! the degraded-mode SLOs end to end —
//!
//! * no deadlock: every submitted ticket reaches a terminal state
//!   (served, expired, or typed-rejected) and shutdown/abort return;
//! * a fenced shard never serves while the service runs: queued work fails
//!   over to healthy shards, and post-fence placements avoid the suspect;
//! * failover preserves the determinism contract: healthy shards'
//!   completions still reassemble bit-identically to their serial
//!   single-threaded references;
//! * the configured [`DegradedPolicy`] is honoured during total
//!   quarantine — FailFast rejects immediately, bounded parking unblocks on
//!   readmission or gives up at its bound / the request's own deadline.
//!
//! Every fault is a seeded pure function of the delivered stream offset, so
//! the campaigns replay deterministically up to thread interleaving — and
//! the assertions only use interleaving-independent facts.

use quac_trng_repro::baselines::{DRangeTrng, RetentionTrng};
use quac_trng_repro::dram_analog::{
    FailureModel, ModuleVariation, OperatingConditions, QuacAnalogModel, RetentionModel,
    TemperatureRamp, TemperatureTrend,
};
use quac_trng_repro::dram_core::{DataPattern, DramGeometry};
use quac_trng_repro::rng_service::{
    ClientId, Completion, DegradedPolicy, HealthPolicy, Priority, RngService, RngServiceConfig,
    ServiceStats, ShardState, SubmitError, ValidationConfig, WaitError,
};
use quac_trng_repro::trng::characterize::{characterize_module, CharacterizationConfig};
use quac_trng_repro::trng::fault::{DriftInjector, FaultInjector};
use quac_trng_repro::trng::pipeline::{shard_seed, QuacTrng};
use quac_trng_repro::trng::EntropyBackend;
use std::time::{Duration, Instant};

const BASE_SEED: u64 = 0xC4A0_5EED;

fn tiny_shards(count: usize) -> (QuacAnalogModel, Vec<QuacTrng>) {
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
    let cfg = CharacterizationConfig {
        segment_stride: 1,
        bitline_stride: 1,
        conditions: OperatingConditions::nominal(),
    };
    let ch = characterize_module(&model, DataPattern::best_average(), &cfg);
    let shards = QuacTrng::shards(&model, &ch, BASE_SEED, count);
    (model, shards)
}

fn reference_stream(model: &QuacAnalogModel, idx: usize, len: usize) -> Vec<u8> {
    let cfg = CharacterizationConfig {
        segment_stride: 1,
        bitline_stride: 1,
        conditions: OperatingConditions::nominal(),
    };
    let ch = characterize_module(model, DataPattern::best_average(), &cfg);
    QuacTrng::with_characterization(model.clone(), ch, shard_seed(BASE_SEED, idx))
        .generate_bytes(len)
}

/// Reassembles one shard's epoch-0 stream from its completions and checks
/// the gapless-tiling invariant.
fn reassemble_shard(completions: &[Completion], shard: usize) -> Vec<u8> {
    let mut chunks: Vec<&Completion> =
        completions.iter().filter(|c| c.shard == shard && c.epoch == 0).collect();
    chunks.sort_by_key(|c| c.stream_offset);
    let mut stream = Vec::new();
    for c in chunks {
        assert_eq!(
            c.stream_offset as usize,
            stream.len(),
            "shard {shard}: completions must tile the stream with no gap or overlap"
        );
        stream.extend_from_slice(&c.bytes);
    }
    stream
}

/// Small lossless windows and a streak-only bound: two consecutive failing
/// 2000 B windows fence a shard, two passing probation windows readmit it.
fn chaos_validation() -> ValidationConfig {
    ValidationConfig {
        enabled: true,
        window_bits: 16_000,
        lossless_tap: true,
        policy: HealthPolicy {
            ewma_alpha: 0.1,
            min_pass_ewma: 0.0,
            max_consecutive_failures: 2,
            probation_windows: 2,
        },
        recharacterization: CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions: OperatingConditions::nominal(),
        },
        ..ValidationConfig::default()
    }
}

fn wait_for(
    service: &RngService,
    timeout: Duration,
    what: &str,
    predicate: impl Fn(&ServiceStats) -> bool,
) -> ServiceStats {
    let deadline = Instant::now() + timeout;
    loop {
        let stats = service.stats();
        if predicate(&stats) {
            return stats;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}: {stats:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Feeds sequential deadline-carrying probes until `predicate` holds.
/// Served, expired, and degraded-rejected probes are all acceptable ends —
/// the fence may land at any point of a probe's life — so this loop can
/// never hang on a stranded ticket. Served completions are pushed to `out`.
fn probe_until(
    service: &RngService,
    out: &mut Vec<Completion>,
    what: &str,
    predicate: impl Fn(&ServiceStats) -> bool,
) -> ServiceStats {
    let give_up = Instant::now() + Duration::from_secs(120);
    loop {
        let stats = service.stats();
        if predicate(&stats) {
            return stats;
        }
        assert!(Instant::now() < give_up, "campaign never reached {what}: {stats:?}");
        // A short probe deadline bounds each iteration: a probe stranded by
        // a fence resolves within ~one sweep of this, so the loop re-polls
        // the stats long before a concurrent requalification can finish —
        // campaigns that must observe the degraded interval after this
        // returns would otherwise race the self-heal.
        let deadline = Instant::now() + Duration::from_millis(50);
        match service.submit_with_deadline(ClientId(0), Priority::Normal, 2048, deadline) {
            Ok(ticket) => match ticket.wait() {
                Ok(c) => out.push(c),
                Err(WaitError::Expired(_)) => {}
                Err(WaitError::Canceled(c)) => panic!("service still running: {c}"),
            },
            Err(SubmitError::Degraded { .. }) => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => panic!("unexpected admission failure: {e}"),
        }
    }
}

/// Campaign 1 — gradual environmental drift with genuine recovery.
///
/// Shard 1 carries a *non-transient* drift fault: a one-shot 50→85 °C
/// excursion over its first 60 kB on a Trend-2 module. The service must
/// fence the shard as the bias grows past the battery's sensitivity, cycle
/// recharacterisation (which cannot clear this fault) and probation — each
/// probation window marching the shard's stream offset through the pulse —
/// and readmit once the environment has genuinely recovered, all while the
/// healthy shard serves bit-identically.
#[test]
fn campaign_gradual_drift_fences_then_recovers_with_the_environment() {
    const DRIFTY: usize = 1;
    let (model, mut shards) = tiny_shards(2);
    let drift = DriftInjector::excursion(
        TemperatureRamp::nominal_to(85.0),
        TemperatureTrend::Decreasing,
        60_000,
        0.004,
    );
    shards[DRIFTY].inject_fault(FaultInjector::drift(drift, 0xD21F));
    let cfg = RngServiceConfig { validation: chaos_validation(), ..RngServiceConfig::default() };
    let service = RngService::start(shards, cfg);

    // Phase 1: drive traffic until the growing bias fences the shard.
    let mut completions = Vec::new();
    let tripped =
        probe_until(&service, &mut completions, "drift quarantine", |s| {
            s.validation.quarantines >= 1
        });
    assert_ne!(tripped.shard_health[DRIFTY].state, ShardState::Healthy);
    assert_eq!(tripped.shard_health[1 - DRIFTY].state, ShardState::Healthy);

    // Phase 2: recovery. Recharacterisation never clears the fault, but
    // probation windows advance the stream past the pulse, after which the
    // bias is gone for good and the shard requalifies.
    let recovered = wait_for(&service, Duration::from_secs(120), "drift readmission", |s| {
        s.validation.readmissions >= 1
    });
    assert!(recovered.validation.recharacterizations >= 1);
    assert!(
        recovered.validation.probation_windows >= 2,
        "recovery must have graded probation windows: {recovered:?}"
    );

    // Phase 3: the recovered shard re-enters placement and serves again,
    // now in epoch 1.
    let give_up = Instant::now() + Duration::from_secs(60);
    loop {
        let ticket = service.submit(ClientId(0), Priority::Normal, 2048).unwrap();
        let c = ticket.wait().expect("served after recovery");
        let shard = c.shard;
        let epoch = c.epoch;
        completions.push(c);
        if shard == DRIFTY {
            assert_eq!(epoch, 1, "post-readmission completions carry the bumped epoch");
            break;
        }
        assert!(Instant::now() < give_up, "recovered shard never placed again");
    }

    let stats = service.shutdown();
    assert!(stats.validation.quarantines >= 1);
    assert!(stats.validation.readmissions >= 1);
    // The healthy shard's epoch-0 stream stayed bit-identical through the
    // whole drift episode.
    let healthy = reassemble_shard(&completions, 1 - DRIFTY);
    assert!(!healthy.is_empty());
    assert_eq!(healthy, reference_stream(&model, 1 - DRIFTY, healthy.len()));
}

/// Campaign 2 — burst erasures with queued-work failover.
///
/// Three shards, one dropping whole transfers (persistent burst fault). A
/// flood of outstanding requests guarantees the faulty shard has queued,
/// not-yet-generated work when the fence lands; that work must be re-placed
/// onto the healthy shards (counted by `failed_over_requests`), every ticket
/// must still be served, and the healthy shards must stay bit-identical.
#[test]
fn campaign_burst_fault_fails_over_queued_work_bit_identically() {
    const SHARDS: usize = 3;
    const FAULTY: usize = 1;
    const FLOOD: usize = 60;
    let (model, mut shards) = tiny_shards(SHARDS);
    shards[FAULTY].inject_fault(FaultInjector::burst(64, 48));
    let cfg = RngServiceConfig {
        // A tap queue of one batch makes the lossless tap a real gate: each
        // worker serves at most one batch past what the validator has
        // graded, so the fence deterministically lands while the faulty
        // shard still holds queued work. (The default queue of 64 batches
        // exceeds the whole flood — whether the fence caught anything was a
        // CPU-contention race.)
        validation: ValidationConfig { tap_queue_batches: 1, ..chaos_validation() },
        // One request per batch: the faulty shard's queue stays deep while
        // its first windows are graded, so the fence catches queued work.
        max_batch_requests: 1,
        max_batch_bytes: 2048,
        max_inflight_bytes: FLOOD * 2048,
        ..RngServiceConfig::default()
    };
    let service = RngService::start(shards, cfg);

    let tickets: Vec<_> = (0..FLOOD)
        .map(|i| service.submit(ClientId(i as u32 % 4), Priority::Normal, 2048).unwrap())
        .collect();
    // Every flooded ticket is served — requests stranded on the fenced
    // shard were re-placed, not lost (no deadline, so a hang here is the
    // deadlock the campaign exists to rule out).
    let mut completions: Vec<Completion> =
        tickets.into_iter().map(|t| t.wait().expect("flood served")).collect();

    let stats = wait_for(&service, Duration::from_secs(60), "burst quarantine", |s| {
        s.validation.quarantines >= 1
    });
    assert_ne!(stats.shard_health[FAULTY].state, ShardState::Healthy);
    assert!(
        stats.failed_over_requests >= 1,
        "the fence must have re-placed queued work: {stats:?}"
    );

    // Post-fence wave: a persistent fault never readmits, so none of these
    // may be served by the suspect shard.
    let wave: Vec<_> = (0..12)
        .map(|_| service.submit(ClientId(9), Priority::Normal, 1024).unwrap())
        .collect();
    for t in wave {
        let c = t.wait().expect("served by a healthy shard");
        assert_ne!(c.shard, FAULTY, "a fenced shard must never serve while the service runs");
        completions.push(c);
    }

    let stats = service.shutdown();
    assert_eq!(stats.validation.readmissions, 0, "a persistent fault cannot requalify");
    assert_eq!(stats.completed_requests as usize, FLOOD + 12);
    for shard in (0..SHARDS).filter(|&s| s != FAULTY) {
        let stream = reassemble_shard(&completions, shard);
        assert!(!stream.is_empty(), "healthy shard {shard} served nothing");
        assert_eq!(
            stream,
            reference_stream(&model, shard, stream.len()),
            "failover perturbed healthy shard {shard}'s stream"
        );
    }
}

/// Campaign 3 — stuck-at pin, total quarantine, fail-fast, self-heal.
///
/// A single shard with a *transient* stuck DQ line: the fence leaves zero
/// healthy shards, so FailFast must reject new work with the typed Degraded
/// error while requalification runs; recharacterisation clears the fault, so
/// the service must then readmit the shard and serve again — the full
/// degrade → reject → self-heal → recover arc with no operator involved.
#[test]
fn campaign_stuck_at_fail_fast_rejects_then_self_heals() {
    let (_, mut shards) = tiny_shards(1);
    shards[0].inject_fault(FaultInjector::stuck_at(0, true).transient());
    // Enough probation windows (≈0.5 MB of probation generation + grading)
    // that the degraded interval lasts far longer than one probe_until
    // iteration (bounded by the 50 ms probe deadline) — smaller streaks
    // healed inside the final probe's expiry wait, before the rejection
    // loop below ever polled.
    let mut validation = chaos_validation();
    validation.policy.probation_windows = 250;
    let cfg = RngServiceConfig { validation, ..RngServiceConfig::default() };
    let service = RngService::start(shards, cfg);

    let mut completions = Vec::new();
    probe_until(&service, &mut completions, "stuck-at quarantine", |s| {
        s.validation.quarantines >= 1
    });

    // Degraded: fail-fast on both admission paths, until the shard heals.
    let mut rejections = 0u32;
    while service.stats().validation.readmissions == 0 {
        match service.try_submit(ClientId(1), Priority::Normal, 512) {
            Err(SubmitError::Degraded { quarantined }) => {
                assert_eq!(quarantined, 1);
                rejections += 1;
            }
            Ok(ticket) => {
                // Readmitted between the stats poll and the submit: served.
                completions.push(ticket.wait().expect("served after readmission"));
                break;
            }
            Err(e) => panic!("unexpected admission failure: {e}"),
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let healed = wait_for(&service, Duration::from_secs(120), "self-heal", |s| {
        s.validation.readmissions >= 1
    });
    assert!(rejections >= 1, "the degraded interval was never observed");
    assert!(healed.degraded_rejections >= u64::from(rejections), "{healed:?}");

    // Healed: submissions are admitted and served again.
    let give_up = Instant::now() + Duration::from_secs(60);
    loop {
        match service.submit(ClientId(2), Priority::Normal, 1024) {
            Ok(t) => {
                assert_eq!(t.wait().expect("served after self-heal").bytes.len(), 1024);
                break;
            }
            // A post-heal window may re-trip before our submit lands; the
            // transient fault is gone, so the next heal is coming.
            Err(SubmitError::Degraded { .. }) => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => panic!("unexpected admission failure: {e}"),
        }
        assert!(Instant::now() < give_up, "service never served after self-heal");
    }
    let stats = service.shutdown();
    assert!(stats.validation.readmissions >= 1);
    assert!(stats.degraded_rejections >= 1);
}

/// Campaign 4 — multi-shard loss with parked submissions resuming.
///
/// Both shards fail (transient bias faults) and are fenced; under a
/// generous Park policy a blocking submission issued during the total
/// quarantine must park — not error — and complete once a shard readmits.
#[test]
fn campaign_multi_shard_loss_parked_submission_resumes_on_readmission() {
    const SHARDS: usize = 2;
    let (_, mut shards) = tiny_shards(SHARDS);
    shards[0].inject_fault(FaultInjector::bias(0.75, 11).transient());
    shards[1].inject_fault(FaultInjector::bias(0.75, 13).transient());
    let mut validation = chaos_validation();
    validation.policy.probation_windows = 50;
    let cfg = RngServiceConfig {
        validation,
        degraded: DegradedPolicy::Park { max_wait: Duration::from_secs(120) },
        ..RngServiceConfig::default()
    };
    let service = std::sync::Arc::new(RngService::start(shards, cfg));

    let mut completions = Vec::new();
    probe_until(&service, &mut completions, "total quarantine", |s| {
        s.shard_health.iter().all(|h| h.state != ShardState::Healthy)
    });

    // Submit from another thread while every shard is fenced: under Park it
    // must block until a readmission, then be served normally.
    let parked = {
        let service = std::sync::Arc::clone(&service);
        std::thread::spawn(move || {
            let ticket = service.submit(ClientId(7), Priority::High, 512).expect("parked, not rejected");
            ticket.wait().expect("served after readmission")
        })
    };
    let healed = wait_for(&service, Duration::from_secs(120), "first readmission", |s| {
        s.validation.readmissions >= 1
    });
    assert!(healed.validation.quarantines >= 2, "both shards were lost: {healed:?}");
    let completion = parked.join().expect("parked submitter thread");
    assert_eq!(completion.bytes.len(), 512);
    assert_eq!(completion.client, ClientId(7));

    let stats =
        std::sync::Arc::try_unwrap(service).expect("submitter joined").shutdown();
    assert!(stats.validation.quarantines >= 2);
    assert!(stats.validation.readmissions >= 1);
}

/// Campaign 5 — bounded parking gives up at the request's own deadline.
///
/// Total quarantine that never heals (persistent fault), a Park policy with
/// an effectively unbounded wait: a deadline-carrying submission must stop
/// parking at *its* deadline and return the typed Degraded error — the
/// request-level bound wins over the policy-level one.
#[test]
fn campaign_parked_submission_honours_its_own_deadline() {
    let (_, mut shards) = tiny_shards(1);
    shards[0].inject_fault(FaultInjector::stuck_at(3, false));
    let cfg = RngServiceConfig {
        validation: chaos_validation(),
        degraded: DegradedPolicy::Park { max_wait: Duration::from_secs(3600) },
        ..RngServiceConfig::default()
    };
    let service = RngService::start(shards, cfg);
    let mut completions = Vec::new();
    probe_until(&service, &mut completions, "persistent quarantine", |s| {
        s.validation.quarantines >= 1
    });

    let started = Instant::now();
    let err = service
        .submit_with_deadline(
            ClientId(1),
            Priority::Normal,
            256,
            Instant::now() + Duration::from_millis(300),
        )
        .unwrap_err();
    let waited = started.elapsed();
    assert_eq!(err, SubmitError::Degraded { quarantined: 1 });
    assert!(waited >= Duration::from_millis(250), "gave up before the deadline: {waited:?}");
    assert!(waited < Duration::from_secs(60), "parked far beyond the request deadline");

    let stats = service.abort();
    assert!(stats.degraded_rejections >= 1);
    assert_eq!(stats.validation.readmissions, 0);
}

/// Campaign 6 — whole-tier loss in the entropy mesh.
///
/// Four shards: two QUAC (both carrying one-shot drift excursions), one
/// D-RaNGe, one retention. The drift fences the *entire* QUAC tier; the
/// mesh must keep serving every submitted request from the non-QUAC
/// backends — zero `Degraded` rejections, zero parked submissions, no lost
/// ticket — at reduced throughput. Once probation marches the QUAC streams
/// past the pulse, both shards readmit and Normal-priority placement shifts
/// back to the QUAC tier. The D-RaNGe shard's epoch-0 stream must stay
/// bit-identical to its serial reference through the whole episode.
#[test]
fn campaign_quac_tier_loss_mesh_serves_from_other_backends() {
    const QUAC_SHARDS: usize = 2;
    let (_, mut quac) = tiny_shards(QUAC_SHARDS);
    for (i, shard) in quac.iter_mut().enumerate() {
        let drift = DriftInjector::excursion(
            TemperatureRamp::nominal_to(85.0),
            TemperatureTrend::Decreasing,
            60_000,
            0.004,
        );
        shard.inject_fault(FaultInjector::drift(drift, 0xD21F + i as u64));
    }
    let geom = DramGeometry::tiny_test();
    const DRANGE_SEED: u64 = 0xD7A6;
    let failures = FailureModel::new(ModuleVariation::generate(&geom, 8));
    let retention = RetentionModel::new(ModuleVariation::generate(&geom, 8));
    let mut backends: Vec<Box<dyn EntropyBackend>> =
        quac.into_iter().map(|s| Box::new(s) as Box<dyn EntropyBackend>).collect();
    backends.push(Box::new(DRangeTrng::new(&failures, &geom, DRANGE_SEED)));
    backends.push(Box::new(RetentionTrng::new(&retention, &geom, 0x7A1D)));
    const DRANGE: usize = QUAC_SHARDS;
    let cfg = RngServiceConfig { validation: chaos_validation(), ..RngServiceConfig::default() };
    let service = RngService::start_mesh(backends, cfg);

    // Phase 1: Normal-priority traffic routes to the QUAC tier and marches
    // both drifting shards into quarantine. Every probe is submitted
    // without a deadline and *must* be served — a probe queued on a QUAC
    // shard when its fence lands fails over to the D-RaNGe tier instead of
    // parking or being rejected.
    let mut completions = Vec::new();
    let give_up = Instant::now() + Duration::from_secs(120);
    loop {
        let stats = service.stats();
        if (0..QUAC_SHARDS).all(|s| stats.shard_health[s].state != ShardState::Healthy) {
            break;
        }
        assert!(Instant::now() < give_up, "QUAC tier never fully fenced: {stats:?}");
        let t = service.submit(ClientId(0), Priority::Normal, 2048).unwrap();
        completions.push(t.wait().expect("the mesh serves every submission"));
    }

    // Phase 2: the whole QUAC tier is down. A mixed-priority wave must be
    // served entirely by the non-QUAC backends, with no degraded admission.
    let wave: Vec<_> = (0..16)
        .map(|i| {
            let priority = if i % 2 == 0 { Priority::High } else { Priority::Normal };
            service.submit(ClientId(1 + i % 3), priority, 1024).unwrap()
        })
        .collect();
    for t in wave {
        let c = t.wait().expect("served during whole-tier loss");
        assert!(c.shard >= DRANGE, "a fenced QUAC shard served during tier loss");
        completions.push(c);
    }
    let stats = service.stats();
    assert_eq!(stats.degraded_rejections, 0, "the mesh never degrades while a tier serves");

    // Phase 3: probation marches both QUAC streams past the pulse; the tier
    // readmits and Normal-priority placement shifts back to QUAC (now in a
    // bumped epoch).
    wait_for(&service, Duration::from_secs(120), "QUAC tier readmission", |s| {
        s.validation.readmissions >= QUAC_SHARDS as u64
    });
    let give_up = Instant::now() + Duration::from_secs(60);
    loop {
        let t = service.submit(ClientId(0), Priority::Normal, 2048).unwrap();
        let c = t.wait().expect("served after readmission");
        let (shard, epoch) = (c.shard, c.epoch);
        completions.push(c);
        if shard < QUAC_SHARDS {
            assert!(epoch >= 1, "post-readmission QUAC completions carry a bumped epoch");
            break;
        }
        assert!(Instant::now() < give_up, "placement never shifted back to the QUAC tier");
    }

    let stats = service.shutdown();
    assert_eq!(stats.degraded_rejections, 0);
    assert!(stats.validation.quarantines >= QUAC_SHARDS as u64);
    assert!(stats.validation.readmissions >= QUAC_SHARDS as u64);
    // The D-RaNGe shard carried the service through the tier loss, and its
    // epoch-0 stream stayed bit-identical to the serial reference.
    let drange_stream = reassemble_shard(&completions, DRANGE);
    assert!(!drange_stream.is_empty(), "the D-RaNGe tier never served");
    assert_eq!(
        drange_stream,
        DRangeTrng::new(&failures, &geom, DRANGE_SEED).generate_bytes(drange_stream.len()),
        "tier failover perturbed the D-RaNGe stream"
    );
}
