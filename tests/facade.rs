//! Integration suite for the **async front door** and its companions: the
//! waker-at-delivery contract of [`AsyncTicket`]/[`AsyncMixedTicket`]
//! (resolution wakes the task — serve, expiry sweep, and abort alike — with
//! zero spurious wakes and no polling thread), the typed entropy contract
//! ([`Trng32`]/[`Trng128`]/[`TrngRaw32`] enforcing their
//! MUST-consume-fresh-bits floors against live completions), the per-shard
//! entropy ledger invariant under proptest, per-tenant token-bucket QoS,
//! and the [`ExpiryStage`] satellite (every expiry names the lifecycle
//! stage that killed it).

use proptest::prelude::*;
use quac_trng_repro::baselines::DRangeTrng;
use quac_trng_repro::dram_analog::{
    FailureModel, ModuleVariation, OperatingConditions, QuacAnalogModel,
};
use quac_trng_repro::dram_core::{DataPattern, DramGeometry};
use quac_trng_repro::memctrl::IdleBudget;
use quac_trng_repro::rng_service::facade::{block_on, AsyncMixedTicket, AsyncTicket};
use quac_trng_repro::rng_service::mixer::mix_reference;
use quac_trng_repro::rng_service::{
    ClientId, Completion, ContractError, ExpiryStage, Priority, RngService, RngServiceConfig,
    ServicePolicies, SubmitError, TokenBucketQos, Trng128, Trng32, TrngRaw32, WaitError,
};
use quac_trng_repro::trng::characterize::{characterize_module, CharacterizationConfig};
use quac_trng_repro::trng::pipeline::{shard_seed, QuacTrng};
use quac_trng_repro::trng::EntropyBackend;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

const BASE_SEED: u64 = 0xFACA_DE01;

/// Characterise the tiny module once for the whole suite: the proptest
/// properties spin up a fresh service per case, and recharacterising each
/// time would dominate the run.
fn characterized() -> &'static (
    QuacAnalogModel,
    quac_trng_repro::trng::characterize::ModuleCharacterization,
) {
    static CH: std::sync::OnceLock<(
        QuacAnalogModel,
        quac_trng_repro::trng::characterize::ModuleCharacterization,
    )> = std::sync::OnceLock::new();
    CH.get_or_init(|| {
        let geom = DramGeometry::tiny_test();
        let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 8));
        let cfg = CharacterizationConfig {
            segment_stride: 1,
            bitline_stride: 1,
            conditions: OperatingConditions::nominal(),
        };
        let ch = characterize_module(&model, DataPattern::best_average(), &cfg);
        (model, ch)
    })
}

fn tiny_shards(count: usize) -> Vec<QuacTrng> {
    let (model, ch) = characterized();
    QuacTrng::shards(model, ch, BASE_SEED, count)
}

/// A two-kind mesh (QUAC + D-RaNGe), the minimum for mixed submissions.
fn two_kind_mesh() -> Vec<Box<dyn EntropyBackend>> {
    let (model, ch) = characterized();
    let geom = DramGeometry::tiny_test();
    let quac = QuacTrng::with_characterization(model.clone(), ch.clone(), shard_seed(BASE_SEED, 0));
    let failures = FailureModel::new(ModuleVariation::generate(&geom, 8));
    let drange = DRangeTrng::new(&failures, &geom, 0xD7A6);
    vec![Box::new(quac), Box::new(drange)]
}

/// A waker that counts its wakes: the spurious-wake probe.
#[derive(Debug, Default)]
struct CountingWaker(AtomicUsize);

impl Wake for CountingWaker {
    fn wake(self: Arc<Self>) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

// ---- the waker-at-delivery contract against a live service ----

#[test]
fn a_live_serve_wakes_the_future_exactly_once() {
    let service = RngService::start(tiny_shards(1), RngServiceConfig::default());
    let ticket = service.submit(ClientId(0), Priority::Normal, 256).unwrap();
    let mut future = std::pin::pin!(AsyncTicket::from(ticket));
    let counter = Arc::new(CountingWaker::default());
    let waker = Waker::from(Arc::clone(&counter));
    let mut cx = Context::from_waker(&waker);
    // Poll until pending registration or immediate readiness; a fast worker
    // may have served the request before the first poll.
    if future.as_mut().poll(&mut cx).is_pending() {
        // Resolution is the only thing that may wake us — wait for it.
        let patience = Instant::now() + Duration::from_secs(30);
        while counter.0.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < patience, "delivery never woke the future");
            std::thread::yield_now();
        }
        assert_eq!(
            counter.0.load(Ordering::SeqCst),
            1,
            "exactly one wake per outcome"
        );
        let Poll::Ready(Ok(completion)) = future.as_mut().poll(&mut cx) else {
            panic!("woken future must be ready with its completion");
        };
        assert_eq!(completion.bytes.len(), 256);
        // The terminal state never wakes again.
        assert!(future.as_mut().poll(&mut cx).is_ready());
        assert_eq!(
            counter.0.load(Ordering::SeqCst),
            1,
            "no wake after resolution"
        );
    }
    service.shutdown();
}

#[test]
fn block_on_redeems_tickets_like_the_blocking_wait() {
    // Same sequential-submission determinism contract as the blocking path:
    // the async front door is a different *wait*, not a different stream.
    let sizes = [5usize, 64, 301, 32, 128];
    let run = |use_async: bool| -> Vec<Vec<u8>> {
        let service = RngService::start(tiny_shards(2), RngServiceConfig::default());
        let bytes = sizes
            .iter()
            .map(|&len| {
                let t = service.submit(ClientId(0), Priority::Normal, len).unwrap();
                if use_async {
                    block_on(AsyncTicket::from(t)).unwrap().bytes
                } else {
                    t.wait().unwrap().bytes
                }
            })
            .collect();
        service.shutdown();
        bytes
    };
    assert_eq!(
        run(true),
        run(false),
        "await and wait must redeem identical streams"
    );
}

#[test]
fn the_expiry_sweep_wakes_async_waiters_with_the_sweep_stage() {
    // One shard paced to a crawl: a sacrificial request commits in pacing,
    // the deadline-carrying one behind it stays queued, expires, and the
    // sweep's resolution must wake the parked executor.
    const LEN: usize = 256;
    let cfg = RngServiceConfig {
        max_batch_requests: 1,
        max_batch_bytes: LEN,
        pacing: IdleBudget::from_gbps(1e-5),
        expiry_sweep_interval: Duration::from_millis(2),
        ..RngServiceConfig::default()
    };
    let service = RngService::start(tiny_shards(1), cfg);
    let _sacrificial = service.submit(ClientId(0), Priority::Normal, LEN).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let deadline = Instant::now() + Duration::from_millis(30);
    let doomed = service
        .submit_with_deadline(ClientId(1), Priority::Normal, LEN, deadline)
        .expect("admitted while queue has space");
    let expired = match block_on(AsyncTicket::from(doomed)) {
        Err(WaitError::Expired(e)) => e,
        other => panic!("the sweep must expire the queued request, got {other:?}"),
    };
    assert_eq!(expired.stage, ExpiryStage::Sweep);
    assert!(
        expired.to_string().contains("while still queued"),
        "sweep expiry must render its stage: {expired}"
    );
    service.abort();
}

#[test]
fn abort_wakes_async_waiters_with_canceled() {
    const LEN: usize = 256;
    let cfg = RngServiceConfig {
        max_batch_requests: 1,
        max_batch_bytes: LEN,
        pacing: IdleBudget::from_gbps(1e-5),
        ..RngServiceConfig::default()
    };
    let service = RngService::start(tiny_shards(1), cfg);
    // Both requests are stuck: the first committed in pacing, the second
    // queued behind it. Abort must wake the async waiter on either.
    let first = service.submit(ClientId(0), Priority::Normal, LEN).unwrap();
    let second = service.submit(ClientId(0), Priority::Normal, LEN).unwrap();
    let waiter = std::thread::spawn(move || {
        (
            block_on(AsyncTicket::from(first)),
            block_on(AsyncTicket::from(second)),
        )
    });
    std::thread::sleep(Duration::from_millis(30));
    service.abort();
    let (first, second) = waiter.join().expect("waiter thread");
    assert!(
        matches!(first, Err(WaitError::Canceled(_)))
            && matches!(second, Err(WaitError::Canceled(_))),
        "abort must cancel both: {first:?} / {second:?}"
    );
}

#[test]
fn mixed_tickets_resolve_async_with_the_reference_mix() {
    let service = RngService::start_mesh(two_kind_mesh(), RngServiceConfig::default());
    let mixed = service
        .submit_mixed(ClientId(0), Priority::Normal, 96)
        .unwrap();
    let out = block_on(AsyncMixedTicket::from(mixed)).expect("both halves served");
    assert_eq!(out.bytes.len(), 96);
    assert_ne!(
        out.first.backend, out.second.backend,
        "mixed halves must come from distinct backend kinds"
    );
    let mut expected = mix_reference(&out.first.bytes, &out.second.bytes);
    expected.truncate(96);
    assert_eq!(
        out.bytes, expected,
        "async mix must equal the scalar reference twin"
    );
    service.shutdown();
}

#[test]
fn one_ticket_is_shared_consistently_across_threads() {
    // Tickets are Sync: a try_wait poller and a wait_deadline blocker on
    // *other* threads must observe the same terminal outcome as the owner.
    let service = RngService::start(tiny_shards(1), RngServiceConfig::default());
    let ticket = service.submit(ClientId(0), Priority::Normal, 512).unwrap();
    let (polled, waited) = std::thread::scope(|scope| {
        let poller = scope.spawn(|| {
            let patience = Instant::now() + Duration::from_secs(30);
            loop {
                match ticket.try_wait().expect("never fails here") {
                    Some(c) => return c,
                    None => assert!(Instant::now() < patience, "poller starved"),
                }
                std::thread::yield_now();
            }
        });
        let blocker = scope.spawn(|| {
            ticket
                .wait_deadline(Instant::now() + Duration::from_secs(30))
                .expect("served, not failed")
                .expect("served within patience")
        });
        (
            poller.join().expect("poller"),
            blocker.join().expect("blocker"),
        )
    });
    assert_eq!(polled, waited, "every thread must see the same completion");
    service.shutdown();
}

// ---- the typed entropy contract on live completions ----

#[test]
fn contract_frames_build_from_live_completions_with_matching_telemetry() {
    let service = RngService::start(tiny_shards(1), RngServiceConfig::default());
    // 2 KiB from the tiny QUAC module banks far more than 128 fresh bits.
    let completion = service
        .submit(ClientId(0), Priority::Normal, 2048)
        .unwrap()
        .wait()
        .unwrap();
    assert!(
        completion.fresh_bits >= 128,
        "tiny QUAC is ~22 fresh bits/byte: {completion:?}"
    );
    let t32 = Trng32::from_completion(&completion).expect("≥32 fresh bits");
    let t128 = Trng128::from_completion(&completion).expect("≥128 fresh bits");
    let raw = TrngRaw32::from_completion(&completion).expect("≥32 fresh bits");
    assert_eq!(t32.value.to_le_bytes(), completion.bytes[..4]);
    assert_eq!(t128.value, completion.bytes[..16]);
    assert_eq!(raw.value, completion.bytes[..32]);
    for telemetry in [t32.telemetry, t128.telemetry, raw.telemetry] {
        assert_eq!(telemetry.shard, completion.shard);
        assert_eq!(telemetry.backend, completion.backend);
        assert_eq!(telemetry.epoch, completion.epoch);
        assert_eq!(telemetry.stream_offset, completion.stream_offset);
        assert_eq!(telemetry.fresh_bits, completion.fresh_bits);
    }
    service.shutdown();
}

// ---- per-tenant QoS ----

#[test]
fn token_bucket_qos_sheds_a_greedy_tenant_without_touching_its_peer() {
    let cfg = RngServiceConfig::default();
    let mut policies = ServicePolicies::for_config(&cfg);
    // 1 KiB burst, trickle refill: the third 512 B request in a tight loop
    // must bounce with the typed error while the other tenant is untouched.
    policies.qos = Box::new(TokenBucketQos::new(64.0, 1024));
    let service = RngService::start_with_policies(tiny_shards(1), cfg, policies);
    for _ in 0..2 {
        let t = service.submit(ClientId(7), Priority::Normal, 512).unwrap();
        t.wait().expect("within burst");
    }
    match service.submit(ClientId(7), Priority::Normal, 512) {
        Err(SubmitError::RateLimited {
            client,
            retry_after,
        }) => {
            assert_eq!(client, ClientId(7));
            assert!(
                retry_after > Duration::ZERO,
                "refill time must be estimated"
            );
        }
        other => panic!("the drained bucket must rate-limit: {other:?}"),
    }
    // Rejection is per tenant, and it is policy, not backpressure: the
    // sibling client's own bucket is full.
    let t = service
        .submit(ClientId(8), Priority::Normal, 512)
        .expect("peer unaffected");
    t.wait().expect("served");
    let stats = service.shutdown();
    assert_eq!(stats.rate_limited_rejections, 1);
}

// ---- satellite regressions ----

#[test]
fn an_already_past_deadline_expires_at_admission_with_its_stage() {
    let service = RngService::start(tiny_shards(1), RngServiceConfig::default());
    let past = Instant::now() - Duration::from_millis(10);
    let ticket = service
        .submit_with_deadline(ClientId(0), Priority::Normal, 64, past)
        .expect("admission-expiry is a resolved ticket, not a submit error");
    let expired = match ticket.wait() {
        Err(WaitError::Expired(e)) => e,
        other => panic!("expected admission expiry, got {other:?}"),
    };
    assert_eq!(expired.stage, ExpiryStage::Admission);
    assert!(
        expired.to_string().contains("at admission"),
        "admission expiry must not blame the queue: {expired}"
    );
    let stats = service.shutdown();
    assert_eq!(stats.expired_requests, 1);
}

#[test]
fn a_budget_parked_submission_expires_with_the_parked_stage() {
    const LEN: usize = 256;
    let cfg = RngServiceConfig {
        max_inflight_bytes: LEN,
        max_batch_requests: 1,
        max_batch_bytes: LEN,
        pacing: IdleBudget::from_gbps(1e-5),
        expiry_sweep_interval: Duration::from_millis(2),
        ..RngServiceConfig::default()
    };
    let service = RngService::start(tiny_shards(1), cfg);
    // Fill the budget; the next submission parks, and its own deadline
    // passes before space frees.
    let _hog = service.submit(ClientId(0), Priority::Normal, LEN).unwrap();
    let deadline = Instant::now() + Duration::from_millis(40);
    let ticket = service
        .submit_with_deadline(ClientId(1), Priority::Normal, LEN, deadline)
        .expect("parked submissions resolve as expired tickets");
    let expired = match ticket.wait() {
        Err(WaitError::Expired(e)) => e,
        other => panic!("expected parked expiry, got {other:?}"),
    };
    assert_eq!(expired.stage, ExpiryStage::Parked);
    assert!(
        expired
            .to_string()
            .contains("parked on the in-flight budget"),
        "parked expiry must name the budget, not the queue: {expired}"
    );
    service.abort();
}

#[test]
fn empty_mixed_submissions_are_rejected_as_empty() {
    // Regression guard: submit_mixed must validate the *client-visible*
    // length up front, exactly like submit/try_submit.
    let service = RngService::start_mesh(two_kind_mesh(), RngServiceConfig::default());
    assert_eq!(
        service
            .submit_mixed(ClientId(0), Priority::Normal, 0)
            .unwrap_err(),
        SubmitError::Empty
    );
    service.shutdown();
}

// ---- the entropy-ledger invariant ----

/// Sum of ledger-attributed fresh bits per shard, from the completions.
fn claimed_per_shard(completions: &[Completion], shards: usize) -> Vec<u64> {
    let mut claimed = vec![0u64; shards];
    for c in completions {
        claimed[c.shard] += c.fresh_bits;
    }
    claimed
}

proptest! {
    /// The tentpole ledger property: across arbitrary request mixes, no
    /// shard's completions ever claim more fresh bits than its ledger shows
    /// drawn — and the exported ledger agrees with the per-completion
    /// attribution. The contract layer then composes for free: a frame's
    /// floor is checked against attribution that is itself conservative.
    #[test]
    fn prop_no_shard_overclaims_its_ledger(
        lens in proptest::collection::vec(1usize..500, 2..7),
        shards in 1usize..3,
    ) {
        let service = RngService::start(tiny_shards(shards), RngServiceConfig::default());
        let completions: Vec<Completion> = lens
            .iter()
            .map(|&len| {
                let t = service.submit(ClientId(0), Priority::Normal, len).unwrap();
                t.wait().expect("served")
            })
            .collect();
        let stats = service.shutdown();
        let claimed = claimed_per_shard(&completions, shards);
        prop_assert_eq!(stats.per_shard_ledger.len(), shards);
        for (shard, ledger) in stats.per_shard_ledger.iter().enumerate() {
            // Ledger and completions must agree per shard.
            prop_assert_eq!(ledger.fresh_bits_claimed, claimed[shard]);
            prop_assert!(
                ledger.fresh_bits_claimed <= ledger.fresh_bits_drawn,
                "shard {} claims {} fresh bits of {} drawn",
                shard, ledger.fresh_bits_claimed, ledger.fresh_bits_drawn
            );
            let served: u64 = completions
                .iter()
                .filter(|c| c.shard == shard)
                .map(|c| c.bytes.len() as u64)
                .sum();
            prop_assert_eq!(ledger.conditioned_bytes_served, served);
        }
    }

    /// The contract constructors and the ledger attribution compose: every
    /// live completion either satisfies a frame's floor or gets the typed
    /// insufficiency error — never a frame backed by unaccounted entropy.
    #[test]
    fn prop_contract_floors_match_the_attributed_fresh_bits(
        lens in proptest::collection::vec(16usize..256, 1..5),
    ) {
        let service = RngService::start(tiny_shards(1), RngServiceConfig::default());
        for &len in &lens {
            let c = service.submit(ClientId(0), Priority::Normal, len).unwrap().wait().unwrap();
            match Trng128::from_completion(&c) {
                Ok(frame) => prop_assert!(frame.telemetry.fresh_bits >= 128),
                Err(ContractError::InsufficientFreshBits { claimed, required }) => {
                    prop_assert_eq!(required, 128);
                    prop_assert_eq!(claimed, c.fresh_bits);
                    prop_assert!(claimed < 128);
                }
                Err(e) => prop_assert!(false, "unexpected contract error: {e}"),
            }
        }
        service.shutdown();
    }
}

// ---- the async facade end-to-end under thread-count matrix ----

/// A compound future joining several async tickets — exercises re-polling
/// and waker re-registration across many pending tickets, as a real
/// executor with a task joining a batch would.
struct JoinAll {
    pending: Vec<AsyncTicket>,
    done: Vec<Result<Completion, WaitError>>,
}

impl Future for JoinAll {
    type Output = Vec<Result<Completion, WaitError>>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        let mut still_pending = Vec::new();
        for mut ticket in this.pending.drain(..) {
            match Pin::new(&mut ticket).poll(cx) {
                Poll::Ready(out) => this.done.push(out),
                Poll::Pending => still_pending.push(ticket),
            }
        }
        this.pending = still_pending;
        if this.pending.is_empty() {
            Poll::Ready(std::mem::take(&mut this.done))
        } else {
            Poll::Pending
        }
    }
}

#[test]
fn a_joined_batch_of_async_tickets_all_resolve() {
    let service = RngService::start(tiny_shards(2), RngServiceConfig::default());
    let pending: Vec<AsyncTicket> = (0..16u32)
        .map(|i| {
            let len = 32 + (i as usize * 37) % 400;
            AsyncTicket::from(
                service
                    .submit(ClientId(i % 3), Priority::Normal, len)
                    .unwrap(),
            )
        })
        .collect();
    let outcomes = block_on(JoinAll {
        pending,
        done: Vec::new(),
    });
    assert_eq!(outcomes.len(), 16);
    for out in outcomes {
        out.expect("every batched request is served");
    }
    service.shutdown();
}
