//! Concrete generators (the stand-in for `rand::rngs`).

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Upstream `rand`'s `StdRng` is ChaCha12; this stand-in uses xoshiro256++
/// (Blackman & Vigna, 2019), which is far smaller, has a 256-bit state, and
/// comfortably passes the statistical batteries this repository runs against
/// it. Like upstream `StdRng`, it is deterministic for a fixed seed and its
/// stream is not guaranteed stable across versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::StdRng;
    use crate::{RngCore, SeedableRng};

    #[test]
    fn all_zero_seed_is_escaped() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64() | rng.next_u64(), 0);
    }
}
