//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The QUAC-TRNG reproduction builds in a hermetic environment without
//! crates.io access, so this crate reimplements the slice of the `rand`
//! API the workspace actually uses:
//!
//! * [`RngCore`] / [`SeedableRng`] core traits (the subset of `rand_core`
//!   the workspace touches, re-exported at the root exactly like `rand`),
//! * the [`Rng`] extension trait with `gen`, `gen_range`, and `gen_bool`,
//! * [`rngs::StdRng`], a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 — statistically strong enough to pass the NIST SP 800-22
//!   battery this repository uses it against in tests.
//!
//! Streams are deterministic for a given seed but are **not** bit-compatible
//! with upstream `rand`; seeds are reproducible only within this workspace.
//!
//! ## Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! assert!(rng.gen_range(10..20) >= 10);
//! ```

pub mod rngs;

/// SplitMix64 step, used to expand `u64` seeds into full seed material.
///
/// This is the same expansion upstream `rand` uses for `seed_from_u64`.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of uniformly distributed random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from fixed seed material.
pub trait SeedableRng: Sized {
    /// Raw seed material (a byte array in every implementation here).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut state = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an RNG's raw output
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Ranges that [`Rng::gen_range`] accepts (the stand-in for
/// `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widen through i128 so full-domain spans (e.g. i64::MIN..
                // i64::MAX) don't wrap; any exclusive span fits in u64.
                let span = ((self.end as i128) - (self.start as i128)) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * f64::sample_standard(rng)
    }
}

/// Convenience extension methods over any [`RngCore`]
/// (the stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one value from the standard uniform distribution of `T`
    /// (`[0, 1)` for floats, the full domain for integers and `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range_and_look_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn extreme_signed_ranges_stay_inside() {
        // Regression: spans wider than the narrow type (and the full i64
        // domain) must be widened before the modulo, not wrapped.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v), "{v} escaped -100..100");
            let w = rng.gen_range(i64::MIN..i64::MAX);
            assert!(w < i64::MAX);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
