//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The QUAC-TRNG reproduction is built in a hermetic environment with no
//! access to crates.io, so the real `serde` stack cannot be vendored. The
//! workspace only uses `#[derive(Serialize, Deserialize)]` as forward-looking
//! annotations — nothing serializes yet — so these derives are accepted and
//! expand to nothing. Swap the `serde`/`serde_derive` entries in the root
//! `[workspace.dependencies]` for the crates.io versions to get real
//! serialization without touching any crate code.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
///
/// Accepts the annotated item and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
///
/// Accepts the annotated item and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
