//! Case generation and failure plumbing for the [`proptest!`](crate::proptest) runner.

/// Deterministic generator backing each property's random cases
/// (SplitMix64; seeded from the property's name so runs are reproducible).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Gen { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Creates a generator seeded from a test name (FNV-1a of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Gen::new(hash)
    }

    /// Returns the next random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Why a single property case did not succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by [`prop_assume!`](crate::prop_assume);
    /// the runner draws a replacement.
    Reject,
    /// An assertion failed; the whole property fails with this message.
    Fail(String),
}

impl TestCaseError {
    /// Convenience constructor for a failed assertion.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

#[cfg(test)]
mod tests {
    use super::Gen;

    #[test]
    fn same_name_same_stream() {
        let mut a = Gen::from_name("x");
        let mut b = Gen::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut gen = Gen::new(3);
        for _ in 0..1000 {
            let v = gen.below(5, 9);
            assert!((5..9).contains(&v));
        }
    }
}
