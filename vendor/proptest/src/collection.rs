//! Collection strategies (mirrors `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::Gen;
use core::ops::{Range, RangeInclusive};

/// A length constraint for collection strategies: `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi: exact + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange { lo: range.start, hi: range.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange { lo: *range.start(), hi: range.end() + 1 }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`; construct with [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Returns a strategy for `Vec`s of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_value(&self, gen: &mut Gen) -> Vec<S::Value> {
        let len = gen.below(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.sample_value(gen)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_cover_the_range() {
        let mut gen = Gen::new(9);
        let strategy = vec(any::<u8>(), 0..4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strategy.sample_value(&mut gen).len()] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn exact_size_is_supported() {
        let mut gen = Gen::new(10);
        let strategy = vec(any::<bool>(), 3);
        assert_eq!(strategy.sample_value(&mut gen).len(), 3);
    }
}
