//! Input strategies: how each property argument is drawn from a [`Gen`].

use crate::test_runner::Gen;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample_value(&self, gen: &mut Gen) -> Self::Value;
}

/// Types with a canonical "whole domain" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one value uniformly from the type's domain.
    fn arbitrary(gen: &mut Gen) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(gen: &mut Gen) -> Self {
        gen.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(gen: &mut Gen) -> Self {
                gen.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's whole domain; construct with [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// Returns the whole-domain strategy for `T` (mirrors `proptest::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_value(&self, gen: &mut Gen) -> T {
        T::arbitrary(gen)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample_value(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widen through i128 so signed spans don't sign-extend
                // through the narrow type; any exclusive span fits in u64.
                let span = ((self.end as i128) - (self.start as i128)) as u64;
                self.start.wrapping_add((gen.next_u64() % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample_value(&self, gen: &mut Gen) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end as i128) - (start as i128)) as u64;
                if span == u64::MAX {
                    return gen.next_u64() as $t;
                }
                start.wrapping_add((gen.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            fn sample_value(&self, gen: &mut Gen) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)*) = self;
                ($($name.sample_value(gen),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample_value(&self, gen: &mut Gen) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * gen.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample_value(&self, gen: &mut Gen) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // Sample the closed interval by stretching just past `end` and
        // clamping, so `end` itself is reachable.
        let raw = start + (end - start) * gen.unit_f64() * (1.0 + 1e-9);
        raw.min(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::Gen;

    #[test]
    fn any_bool_hits_both_values() {
        let mut gen = Gen::new(1);
        let strategy = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..100 {
            seen[usize::from(strategy.sample_value(&mut gen))] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn inclusive_f64_range_stays_inside() {
        let mut gen = Gen::new(2);
        let strategy = 0.0f64..=1.0;
        for _ in 0..10_000 {
            let v = strategy.sample_value(&mut gen);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn signed_range_wraps_correctly() {
        let mut gen = Gen::new(3);
        let strategy = -5i32..5;
        for _ in 0..1000 {
            let v = strategy.sample_value(&mut gen);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn narrow_signed_range_spanning_most_of_the_domain_stays_inside() {
        // Regression: the span must be widened before the u64 cast, or
        // -100i8..100 sign-extends into a bogus 2^64-ish span.
        let mut gen = Gen::new(4);
        let strategy = -100i8..100;
        let inclusive = i8::MIN..=i8::MAX;
        for _ in 0..10_000 {
            let v = strategy.sample_value(&mut gen);
            assert!((-100..100).contains(&v), "{v} escaped -100..100");
            let _ = inclusive.sample_value(&mut gen);
        }
    }
}
