//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Reimplements the subset of the proptest API the workspace's tests use:
//! the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`]/
//! [`prop_assert_ne!`]/[`prop_assume!`], `any::<T>()`, range strategies, and
//! [`collection::vec()`]. Each property runs a fixed number of random cases
//! (256) drawn from a deterministic per-test generator, so failures are
//! reproducible run-to-run. There is **no shrinking**: a failing case is
//! reported as-is with its sampled inputs' debug output where available.
//!
//! Swap the `[workspace.dependencies]` entry for crates.io proptest to get
//! shrinking and persistence without changing any test code.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Arbitrary, Strategy};
pub use test_runner::{Gen, TestCaseError};

/// Number of accepted random cases each property runs.
pub const CASES: usize = 256;

/// Glob-import target mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over [`CASES`] random inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut gen = $crate::test_runner::Gen::from_name(stringify!($name));
                let mut accepted = 0usize;
                let mut attempts = 0usize;
                while accepted < $crate::CASES {
                    attempts += 1;
                    assert!(
                        attempts <= $crate::CASES * 32,
                        "property {} rejected too many cases via prop_assume!",
                        stringify!($name),
                    );
                    $(let $arg = $crate::Strategy::sample_value(&($strategy), &mut gen);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed: {}", stringify!($name), msg)
                        }
                    }
                }
            }
        )+
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
}

/// Discards the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(u64::from(a) + u64::from(b), u64::from(b) + u64::from(a));
        }

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.5f64..=1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..=1.5).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_discards_without_failing(a in any::<u8>()) {
            prop_assume!(a != 0);
            prop_assert!(a > 0);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(_x in any::<u8>()) {
                prop_assert!(false);
            }
        }
        always_fails();
    }
}
