//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator (Bernstein's ChaCha with
//! 8 rounds, the variant `rand_chacha::ChaCha8Rng` exposes) on top of the
//! [`rand`] shim's [`RngCore`]/[`SeedableRng`] traits. The keystream is a
//! faithful ChaCha8 implementation, but the word-serialisation order is this
//! crate's own, so seeds are reproducible within this workspace only.
//!
//! ## Example
//!
//! ```
//! use rand_chacha::rand_core::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use rand::Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(99);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! ```

use rand::{RngCore, SeedableRng};

/// Re-export of the core RNG traits, mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_ROUNDS: usize = 8;
/// "expand 32-byte k", the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream cipher used as a deterministic RNG, with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (the nonce words stay zero).
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index within `block`; 16 means "exhausted".
    word_pos: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14], state[15]: zero nonce.
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.word_pos = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let word = self.block[self.word_pos];
        self.word_pos += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(lo) | (u64::from(hi) << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, block: [0; 16], word_pos: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_looks_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..4096).map(|_| rng.next_u64().count_ones()).sum();
        let total = 4096 * 64;
        let frac = f64::from(ones) / f64::from(total);
        assert!((frac - 0.5).abs() < 0.01, "ones fraction {frac}");
    }

    #[test]
    fn works_through_rng_extension_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let v = rng.gen_range(0usize..10);
        assert!(v < 10);
    }
}
