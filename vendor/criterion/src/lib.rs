//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Supports the subset of the criterion API the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], `sample_size`, a
//! [`Criterion::throughput_bits`] hint for Gb/s derivation, and the
//! [`criterion_group!`]/[`criterion_main!`] macros (both the struct-like and
//! positional forms). Like the real criterion, when the harness is invoked
//! by `cargo test` (no `--bench` flag on the command line) every benchmark
//! body runs exactly once as a smoke test; under `cargo bench` it measures
//! wall-clock time over `sample_size` samples and prints a short report.
//!
//! ## Machine-readable results
//!
//! When the `BENCH_JSON` environment variable names a file and the harness
//! runs in measuring mode, [`write_json_report`] (invoked automatically by
//! `criterion_main!`) writes every benchmark's best time — and, where a
//! throughput hint was given, the derived Gb/s — as JSON. If the file
//! already exists, each benchmark's *baseline* (its `baseline_ns_per_iter`,
//! or failing that its previous `ns_per_iter`) is carried forward and a
//! `speedup` factor against that baseline is recorded, so the file tracks
//! the performance trajectory across commits.
//!
//! No statistics, plots, or baselines — swap the `[workspace.dependencies]`
//! entry for crates.io criterion to get those without changing bench code.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One measured benchmark, queued for the JSON report.
#[derive(Debug, Clone)]
struct BenchRecord {
    name: String,
    ns_per_iter: f64,
    samples: usize,
    bits_per_iter: Option<u64>,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// The benchmark harness: collects named benchmark functions and runs them.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measure: bool,
    pending_bits: Option<u64>,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirrors real criterion: `cargo bench` passes `--bench` to the
        // harness binary; `cargo test` does not, and benches become smoke
        // tests that run each body once. A trailing free argument
        // (`cargo bench -- <substring>`) filters benchmarks by name, again
        // like the real crate; the filter only applies in measuring mode so
        // `cargo test` harness flags are never misread as filters.
        let measure = std::env::args().any(|a| a == "--bench");
        let filter = if measure {
            std::env::args().skip(1).find(|a| !a.starts_with('-'))
        } else {
            None
        };
        Criterion { sample_size: 100, measure, pending_bits: None, filter }
    }
}

impl Criterion {
    /// Sets the number of samples taken per benchmark in measuring mode.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declares how many bits one iteration of the *next* benchmark
    /// processes, so the JSON report can derive Gb/s (the stand-in for
    /// criterion's `Throughput`).
    pub fn throughput_bits(&mut self, bits: u64) -> &mut Self {
        self.pending_bits = Some(bits);
        self
    }

    /// Runs (or smoke-tests) one benchmark and prints its timing.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.measure { self.sample_size } else { 1 };
        let bits = self.pending_bits.take();
        if let Some(f) = &self.filter {
            if !id.contains(f.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher { samples, best: Duration::MAX, iters_done: 0 };
        f(&mut bencher);
        if self.measure {
            let ns = bencher.best.as_nanos() as f64;
            match bits {
                Some(b) => println!(
                    "{id:<40} best {ns:>12.1} ns/iter ({samples} samples, {:.3} Gb/s)",
                    b as f64 / ns
                ),
                None => println!("{id:<40} best {ns:>12.1} ns/iter ({samples} samples)"),
            }
            RESULTS.lock().expect("bench registry poisoned").push(BenchRecord {
                name: id.to_string(),
                ns_per_iter: ns,
                samples,
                bits_per_iter: bits,
            });
        } else {
            println!("{id:<40} ok (smoke test, 1 iteration)");
        }
        self
    }
}

/// Timer handed to each benchmark body; call [`Bencher::iter`] with the
/// routine to measure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    best: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Runs `routine` once per sample, keeping the best (minimum) time.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.best = self.best.min(elapsed);
            self.iters_done += 1;
        }
    }
}

/// Extracts `"key":value` (a bare JSON number) from a result line of the
/// `BENCH_JSON` report. Public so report consumers (the `bench_check`
/// regression gate) parse with the exact helpers the writer round-trips
/// through, instead of a drifting copy.
pub fn json_number(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Tags a preserved-but-unmeasured report entry with `"carried":true`
/// (idempotent), so downstream tooling — the `bench_check` regression gate —
/// can tell a real measurement from a merge artefact.
fn carry_entry(raw: &str) -> String {
    if raw.contains("\"carried\":true") {
        return raw.to_string();
    }
    match raw.strip_suffix('}') {
        Some(body) => format!("{body},\"carried\":true}}"),
        None => raw.to_string(),
    }
}

/// Extracts `"key":"value"` (a JSON string, no escapes) from a result line
/// of the `BENCH_JSON` report; see [`json_number`].
pub fn json_string(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Writes the measured results as JSON to the `BENCH_JSON` path (no-op when
/// the variable is unset or nothing was measured). Carries each benchmark's
/// baseline forward from an existing report at the same path, and *merges*:
/// entries present in the old report but not measured this run (e.g. when a
/// name filter selected a subset) are preserved verbatim, so a filtered run
/// never drops the rest of the trajectory.
pub fn write_json_report() {
    let Ok(path) = std::env::var("BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let results = RESULTS.lock().expect("bench registry poisoned");
    if results.is_empty() {
        return;
    }
    // Previous report → (name, raw entry JSON, baseline ns). The explicit
    // baseline wins, else the previous current value becomes the baseline.
    let mut previous: Vec<(String, String, Option<f64>)> = Vec::new();
    if let Ok(old) = std::fs::read_to_string(&path) {
        for line in old.lines() {
            if let Some(name) = json_string(line, "name") {
                let baseline = json_number(line, "baseline_ns_per_iter")
                    .or_else(|| json_number(line, "ns_per_iter"));
                previous.push((name, line.trim().trim_end_matches(',').to_string(), baseline));
            }
        }
    }
    let format_measured = |r: &BenchRecord| {
        let mut fields = format!(
            "{{\"name\":\"{}\",\"ns_per_iter\":{:.1},\"samples\":{}",
            r.name, r.ns_per_iter, r.samples
        );
        if let Some(bits) = r.bits_per_iter {
            fields.push_str(&format!(
                ",\"bits_per_iter\":{bits},\"gbps\":{:.4}",
                bits as f64 / r.ns_per_iter
            ));
        }
        if let Some((_, _, Some(baseline))) = previous.iter().find(|(n, _, _)| *n == r.name) {
            fields.push_str(&format!(
                ",\"baseline_ns_per_iter\":{baseline:.1},\"speedup\":{:.2}",
                baseline / r.ns_per_iter
            ));
        }
        fields.push('}');
        fields
    };
    // Old entry order first (measured names updated in place, unmeasured
    // kept as-is but tagged `"carried":true` so downstream tooling — the
    // bench_check regression gate — can tell a real measurement from a
    // merge artefact), then any newly-added benchmarks in run order.
    let mut entries: Vec<String> = Vec::new();
    for (name, raw, _) in &previous {
        match results.iter().find(|r| r.name == *name) {
            Some(r) => entries.push(format_measured(r)),
            None => entries.push(carry_entry(raw)),
        }
    }
    for r in results.iter() {
        if !previous.iter().any(|(n, _, _)| n == &r.name) {
            entries.push(format_measured(r));
        }
    }
    let mut out = String::from("{\n  \"schema\": 1,\n  \"unit\": \"ns/iter (best of N samples)\",\n  \"results\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    ");
        out.push_str(e);
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// Declares a named group of benchmark functions.
///
/// Both upstream forms are accepted:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(10);
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs every benchmark in this `criterion_group!`.
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates the `main` function that runs every listed group, then emits
/// the machine-readable report when `BENCH_JSON` is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once_per_sample_request() {
        let mut criterion =
            Criterion { sample_size: 5, measure: false, pending_bits: None, filter: None };
        let mut runs = 0;
        criterion.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn name_filter_skips_non_matching_benchmarks() {
        let mut criterion = Criterion {
            sample_size: 2,
            measure: true,
            pending_bits: None,
            filter: Some("nist".to_string()),
        };
        let mut matched = 0;
        let mut skipped = 0;
        criterion.bench_function("nist_sts_50kb", |b| b.iter(|| matched += 1));
        criterion.bench_function("sha256_4KiB", |b| b.iter(|| skipped += 1));
        assert_eq!(matched, 2);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn measuring_mode_honours_sample_size() {
        let mut criterion =
            Criterion { sample_size: 4, measure: true, pending_bits: None, filter: None };
        let mut runs = 0;
        criterion.bench_function("vendored-criterion-self-test", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 4);
    }

    #[test]
    fn merge_tags_unmeasured_entries_as_carried_exactly_once() {
        // Unmeasured entries preserved by the merge gain `"carried":true`;
        // re-merging an already-carried entry must not tag it again.
        let raw = r#"{"name":"old","ns_per_iter":5.0,"samples":10}"#;
        let once = carry_entry(raw);
        assert_eq!(once, r#"{"name":"old","ns_per_iter":5.0,"samples":10,"carried":true}"#);
        assert_eq!(carry_entry(&once), once, "idempotent");
        assert_eq!(once.matches("\"carried\":true").count(), 1);
    }

    #[test]
    fn json_field_extraction() {
        let line = r#"    {"name":"sha","ns_per_iter":123.4,"samples":10,"baseline_ns_per_iter":456.0,"speedup":3.70},"#;
        assert_eq!(json_string(line, "name").as_deref(), Some("sha"));
        assert_eq!(json_number(line, "ns_per_iter"), Some(123.4));
        assert_eq!(json_number(line, "baseline_ns_per_iter"), Some(456.0));
        assert_eq!(json_number(line, "missing"), None);
    }
}
