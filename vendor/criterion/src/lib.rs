//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Supports the subset of the criterion API the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], `sample_size`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros (both the struct-like and
//! positional forms). Like the real criterion, when the harness is invoked
//! by `cargo test` (no `--bench` flag on the command line) every benchmark
//! body runs exactly once as a smoke test; under `cargo bench` it measures
//! wall-clock time over `sample_size` samples and prints a short report.
//!
//! No statistics, plots, or baselines — swap the `[workspace.dependencies]`
//! entry for crates.io criterion to get those without changing bench code.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness: collects named benchmark functions and runs them.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirrors real criterion: `cargo bench` passes `--bench` to the
        // harness binary; `cargo test` does not, and benches become smoke
        // tests that run each body once.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { sample_size: 100, measure }
    }
}

impl Criterion {
    /// Sets the number of samples taken per benchmark in measuring mode.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs (or smoke-tests) one benchmark and prints its timing.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.measure { self.sample_size } else { 1 };
        let mut bencher = Bencher { samples, best: Duration::MAX, iters_done: 0 };
        f(&mut bencher);
        if self.measure {
            println!(
                "{id:<40} best {:>12.1} ns/iter ({} samples)",
                bencher.best.as_nanos() as f64,
                samples
            );
        } else {
            println!("{id:<40} ok (smoke test, 1 iteration)");
        }
        self
    }
}

/// Timer handed to each benchmark body; call [`Bencher::iter`] with the
/// routine to measure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    best: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Runs `routine` once per sample, keeping the best (minimum) time.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.best = self.best.min(elapsed);
            self.iters_done += 1;
        }
    }
}

/// Declares a named group of benchmark functions.
///
/// Both upstream forms are accepted:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(10);
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs every benchmark in this `criterion_group!`.
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates the `main` function that runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once_per_sample_request() {
        let mut criterion = Criterion { sample_size: 5, measure: false };
        let mut runs = 0;
        criterion.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn measuring_mode_honours_sample_size() {
        let mut criterion = Criterion { sample_size: 4, measure: true };
        let mut runs = 0;
        criterion.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 4);
    }
}
