//! Offline stand-in for the `serde` facade crate.
//!
//! Provides the `Serialize`/`Deserialize` names the workspace imports —
//! both the (empty) traits and the no-op derive macros re-exported from
//! [`serde_derive`]. See that crate's documentation for the rationale and
//! for how to swap in the real serde stack.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
///
/// The no-op derive does not implement this trait; it exists so code written
/// against the real serde API keeps compiling if it names the trait.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
///
/// The no-op derive does not implement this trait; it exists so code written
/// against the real serde API keeps compiling if it names the trait.
pub trait Deserialize<'de>: Sized {}
