# Developer entry points; CI runs `just ci` equivalents. `just --list` to see all.

# Build everything in release mode.
build:
    cargo build --release

# Run the full test suite: unit, integration, doc tests, and bench smoke tests.
test:
    cargo test -q

# Generate API documentation for the workspace (must be warning-free).
doc:
    cargo doc --no-deps

# Lint everything; warnings are errors, matching CI.
clippy:
    cargo clippy --all-targets -- -D warnings

# Check formatting without rewriting.
fmt-check:
    cargo fmt --all --check

# Run the criterion micro-benchmarks in measuring mode.
bench:
    cargo bench

# Measure the benches and refresh the machine-readable perf trajectory
# (BENCH_RESULTS.json at the repo root; baselines are carried forward).
bench-json:
    BENCH_JSON="$(pwd)/BENCH_RESULTS.json" cargo bench -p qt_bench

# Reproduce every paper figure/table (sampled resolution).
figures:
    for bin in fig08_data_patterns fig09_segment_entropy fig10_cache_blocks \
               fig11_throughput fig12_spec_idle fig13_scaling fig14_temperature \
               table1_nist_sts table2_prior_work table3_modules section9_integration; do \
        cargo run --release --bin $bin || exit 1; echo; \
    done

# Everything CI checks, in CI's order.
ci: build test doc clippy
