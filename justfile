# Developer entry points; CI runs `just ci` equivalents. `just --list` to see all.

# Build everything in release mode.
build:
    cargo build --release

# Run the full test suite: unit, integration, doc tests, and bench smoke tests.
test:
    cargo test -q

# Generate API documentation for the workspace (must be warning-free).
doc:
    cargo doc --no-deps

# Lint everything; warnings are errors, matching CI.
clippy:
    cargo clippy --all-targets -- -D warnings

# Check formatting without rewriting.
fmt-check:
    cargo fmt --all --check

# The RNG-service integration + adversarial-scheduling suites under the
# same QUAC_THREADS matrix CI runs (serial and 4-worker validation paths).
service-tests:
    QUAC_THREADS=1 cargo test -q --test rng_service --test adversarial_scheduling
    QUAC_THREADS=4 cargo test -q --test rng_service --test adversarial_scheduling

# The degraded-mode chaos campaigns (drift, burst, stuck-at, multi-shard
# loss) against the live threaded service, under the same QUAC_THREADS
# matrix as CI.
chaos-tests:
    QUAC_THREADS=1 cargo test -q --test chaos_campaigns
    QUAC_THREADS=4 cargo test -q --test chaos_campaigns

# The async-front-door suite: futures woken by the delivery side, typed
# contract frames, the per-shard entropy ledger properties, and per-tenant
# QoS — under the same QUAC_THREADS matrix as CI.
facade-tests:
    QUAC_THREADS=1 cargo test -q --test facade
    QUAC_THREADS=4 cargo test -q --test facade

# The entropy-mesh suites: heterogeneous backends, tiered placement,
# cross-source mixing, the correlation check, and the QUAC-tier-loss chaos
# campaign — under the same QUAC_THREADS matrix as CI.
mesh-tests:
    QUAC_THREADS=1 cargo test -q --test mesh --test chaos_campaigns
    QUAC_THREADS=4 cargo test -q --test mesh --test chaos_campaigns

# The system demo with the Prometheus metrics exposition of the burst run
# appended — what scraping the service would return.
metrics-demo:
    QUAC_METRICS=1 cargo run --release --example pim_rng_service

# Run the criterion micro-benchmarks in measuring mode.
bench:
    cargo bench

# Measure the benches and refresh the machine-readable perf trajectory
# (BENCH_RESULTS.json at the repo root; baselines are carried forward).
bench-json:
    BENCH_JSON="$(pwd)/BENCH_RESULTS.json" cargo bench -p qt_bench

# Measure only the NIST battery benches (name filter); the JSON merge keeps
# every other benchmark's entry intact.
nist-bench:
    BENCH_JSON="$(pwd)/BENCH_RESULTS.json" cargo bench -p qt_bench -- nist

# Re-measure and fail if any hot path regressed >25% (median-normalised)
# against the committed BENCH_RESULTS.json, or if sustained generation fell
# under the Gb/s floor (75% of the committed baseline) — the same gate CI
# runs. The fresh run goes to a temp file, so the committed baseline is
# never touched (refresh it deliberately with `just bench-json`).
bench-check:
    cp BENCH_RESULTS.json /tmp/quac-bench-fresh.json
    BENCH_JSON=/tmp/quac-bench-fresh.json cargo bench -p qt_bench
    cargo run --release -p qt_bench --bin bench_check -- /tmp/quac-bench-fresh.json BENCH_RESULTS.json

# The throughput-acceptance suite: golden-stream digests (the byte-stream
# contract), the batched-vs-reference equivalence pins in the generation
# crates, and a fresh bench measurement gated by bench-check (regressions +
# the generation Gb/s floor).
perf-tests:
    cargo test -q --test golden_streams
    cargo test -q -p qt_dram_analog -p qt_crypto -p quac_trng -p qt_nist_sts
    just bench-check

# Full-density reproduction: seed .quac-cache once with the population-wide
# characterisation (table3 sweeps all modules at QUAC_FULL=1 density), then
# reproduce every figure/table from the cached characterisations. The first
# run is the expensive one; later runs load from .quac-cache instantly.
figures-full:
    QUAC_FULL=1 QUAC_CACHE_DIR="$(pwd)/.quac-cache" cargo run --release --bin table3_modules
    for bin in fig08_data_patterns fig09_segment_entropy fig10_cache_blocks \
               fig11_throughput fig12_spec_idle fig13_scaling fig14_temperature \
               table1_nist_sts table2_prior_work section9_integration; do \
        QUAC_FULL=1 QUAC_CACHE_DIR="$(pwd)/.quac-cache" \
            cargo run --release --bin $bin || exit 1; echo; \
    done

# Reproduce every paper figure/table (sampled resolution).
figures:
    for bin in fig08_data_patterns fig09_segment_entropy fig10_cache_blocks \
               fig11_throughput fig12_spec_idle fig13_scaling fig14_temperature \
               table1_nist_sts table2_prior_work table3_modules section9_integration; do \
        cargo run --release --bin $bin || exit 1; echo; \
    done

# Everything CI checks, in CI's order.
ci: build test doc clippy
