//! Umbrella crate for the QUAC-TRNG reproduction.
//!
//! Re-exports every crate in the workspace under a single dependency so
//! integration tests and examples can use one import path.

pub use qt_baselines as baselines;
pub use qt_bench as bench;
pub use qt_crypto as crypto;
pub use qt_dram_analog as dram_analog;
pub use qt_dram_core as dram_core;
pub use qt_dram_sim as dram_sim;
pub use qt_memctrl as memctrl;
pub use qt_nist_sts as nist_sts;
pub use qt_rng_service as rng_service;
pub use qt_softmc as softmc;
pub use qt_workloads as workloads;
pub use quac_trng as trng;
