//! Quickstart: build a QUAC-TRNG on a simulated DDR4 module and draw random
//! numbers, then sanity-check the output with the NIST statistical tests.
//!
//! Run with: `cargo run --release --example quickstart`

use quac_trng_repro::dram_analog::PAPER_MODULES;
use quac_trng_repro::nist_sts::{run_all_tests, Significance};
use quac_trng_repro::trng::pipeline::QuacTrng;

fn main() {
    // Module M13 has the highest-entropy segments in the characterised
    // population (Table 3).
    let module = &PAPER_MODULES[12];
    println!("building QUAC-TRNG on module {} ({})", module.name, module.chip_identifier);

    let mut trng = QuacTrng::for_module(module, 0xC0FFEE);
    let ch = trng.characterization();
    println!(
        "highest-entropy segment: {} with {:.1} bits of entropy ({} SHA-256 input blocks)",
        ch.best_segment.index(),
        ch.best_segment_entropy,
        ch.sha_input_blocks()
    );

    // Draw a 256-bit key and a handful of dice rolls.
    let key = trng.generate_bytes(32);
    println!("256-bit key: {}", key.iter().map(|b| format!("{b:02x}")).collect::<String>());
    let dice: Vec<u8> = trng.generate_bytes(8).iter().map(|b| b % 6 + 1).collect();
    println!("dice rolls:  {dice:?}");

    // Validate a 100 kb stream against the NIST STS at the paper's alpha.
    let stream = trng.generate_bits(100_000);
    let results = run_all_tests(&stream);
    let passed = results.iter().filter(|r| r.passes(Significance::PAPER)).count();
    println!("NIST STS: {passed}/{} tests passed (alpha = 0.001)", results.len());
    for r in &results {
        println!("  {:<36} p = {:.4}", r.name, r.p_value);
    }
}
