//! Drive the behavioural DRAM chip simulator through the SoftMC-style host
//! controller, exactly like the paper's Section 4.2 validation experiments:
//! show that the ACT–PRE–ACT sequence with violated timings opens all four
//! rows of a segment, that a write while they are open updates all four rows,
//! and that Algorithm 1 produces random sense-amplifier values.
//!
//! Run with: `cargo run --release --example quac_on_simulated_chip`

use quac_trng_repro::dram_core::{BitVec, DataPattern, DramGeometry, Segment, CACHE_BLOCK_BITS};
use quac_trng_repro::dram_sim::DramModuleSim;
use quac_trng_repro::softmc::{experiments, HostController};

fn main() {
    let sim = DramModuleSim::with_seed(DramGeometry::tiny_test(), 2021);
    let mut host = HostController::new(sim);
    let bank = host.module().bank_ref(0, 0);
    let segment = Segment::new(3);

    // Verification experiment: QUAC, write a marker, read each row back.
    let marker = BitVec::from_bits((0..CACHE_BLOCK_BITS).map(|i| i % 5 == 0));
    let rows = experiments::quac_four_row_write_verification(&mut host, bank, segment, &marker)
        .expect("verification experiment");
    let all_updated = rows.iter().all(|r| *r == marker);
    println!("four-row write verification: all rows updated = {all_updated}");

    // Algorithm 1: repeated QUAC produces random values in the sense amps.
    let snapshots =
        experiments::collect_quac_bitstreams(&mut host, bank, segment, DataPattern::best_average(), 50)
            .expect("Algorithm 1");
    let row_bits = host.module().geometry().row_bits;
    let mut metastable = 0usize;
    for b in 0..row_bits {
        let stream = experiments::bitline_stream(&snapshots, b);
        let ones = stream.count_ones();
        if ones > 5 && ones < stream.len() - 5 {
            metastable += 1;
        }
    }
    println!(
        "{metastable} of {row_bits} sense amplifiers behave randomly across 50 QUAC operations"
    );
    println!(
        "first snapshot: {} ones / {} bitlines",
        snapshots[0].count_ones(),
        snapshots[0].len()
    );
}
