//! The paper's system scenario as a running service: a memory controller
//! answers random-number requests from several applications while regular
//! memory traffic runs, stealing only idle DRAM cycles (Sections 3, 7.3, 9).
//!
//! Four concurrent clients submit requests to a [`RngService`] sharded over
//! two channels of (a simulation of) module M1. The service batches small
//! reads into whole QUAC iterations, applies backpressure through an
//! in-flight byte budget, and — in the paced runs — throttles each channel
//! to the random-byte rate its idle cycles can sustain under a co-running
//! SPEC2006 workload.
//!
//! The burst run's output is then validated *inline* with the full NIST
//! SP 800-22 battery (the paper's α = 0.001, Section 6.2): shard 0's
//! channel stream is reassembled from the completions' provenance and run
//! through all 15 tests. The word-parallel battery runs ~19× faster than
//! the bit-at-a-time one, so "validate what we serve" fits in the serving
//! loop instead of being an offline step (the DR-STRaNGe system argument).
//!
//! Run with: `cargo run --release --example pim_rng_service`

use quac_trng_repro::dram_analog::PAPER_MODULES;
use quac_trng_repro::dram_core::{BitVec, DataPattern, TransferRate};
use quac_trng_repro::memctrl::system::{idle_injection_throughput_gbps, MemorySystem, MemorySystemConfig};
use quac_trng_repro::memctrl::IdleBudget;
use quac_trng_repro::nist_sts::{run_all_tests, Significance};
use quac_trng_repro::rng_service::{
    ClientId, Priority, RngService, RngServiceConfig, ServiceStats, ValidationConfig,
};
use quac_trng_repro::trng::characterize::CharacterizationConfig;
use quac_trng_repro::trng::pipeline::QuacTrng;
use quac_trng_repro::trng::throughput::ThroughputModel;
use quac_trng_repro::trng::CharacterizationCache;
use quac_trng_repro::workloads::{TraceGenerator, SPEC2006_WORKLOADS};
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 2;
const CLIENTS: u32 = 4;
const REQUESTS_PER_CLIENT: usize = 16;
const REQUEST_BYTES: usize = 16 << 10;
const INJECTION_EFFICIENCY: f64 = 0.95;
/// How much of the delivered stream the inline battery validates — the
/// paper's per-sequence length (1 Mb, Section 6.2).
const VALIDATED_BITS: usize = 1_000_000;

/// Drives `CLIENTS` concurrent client threads through the service and
/// returns the aggregate delivered rate in Gb/s (of simulation wall-clock —
/// the simulated electrical model generates far slower than real DRAM, so
/// rates are meaningful relative to each other, not to the paper's 3.44)
/// plus every completion's `(shard, stream_offset, bytes)` provenance.
fn drive_clients(service: &Arc<RngService>) -> (f64, Vec<(usize, u64, Vec<u8>)>) {
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let service = Arc::clone(service);
            std::thread::spawn(move || {
                let mut delivered = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for i in 0..REQUESTS_PER_CLIENT {
                    // One client mixes priorities, the rest are bulk readers.
                    let priority =
                        if client == 0 && i % 4 == 0 { Priority::High } else { Priority::Normal };
                    let ticket = service
                        .submit(ClientId(client), priority, REQUEST_BYTES)
                        .expect("request admitted");
                    let completion = ticket.wait().expect("request served");
                    assert_eq!(completion.bytes.len(), REQUEST_BYTES);
                    delivered.push((completion.shard, completion.stream_offset, completion.bytes));
                }
                delivered
            })
        })
        .collect();
    let mut chunks = Vec::new();
    for h in handles {
        chunks.extend(h.join().expect("client thread"));
    }
    let total: usize = chunks.iter().map(|(_, _, b)| b.len()).sum();
    let rate = total as f64 * 8.0 / 1e9 / started.elapsed().as_secs_f64();
    (rate, chunks)
}

/// Validates served output inline: reassembles shard 0's output stream from
/// the completions' `(shard, stream_offset)` provenance — *which* client got
/// which chunk is scheduling-dependent, but a shard's stream content is
/// deterministic (the service's serial-equivalence tests pin this) — and
/// runs the first `VALIDATED_BITS` of it through the full 15-test battery
/// at the paper's α = 0.001. Prints a one-line verdict per failing test
/// (none can occur: the stream is identical on every run and passes).
fn validate_served_stream(chunks: &[(usize, u64, Vec<u8>)]) {
    let mut shard0: Vec<(u64, &[u8])> =
        chunks.iter().filter(|(s, _, _)| *s == 0).map(|(_, o, b)| (*o, b.as_slice())).collect();
    shard0.sort_by_key(|(offset, _)| *offset);
    let mut bytes = Vec::new();
    for (offset, chunk) in shard0 {
        assert_eq!(offset as usize, bytes.len(), "shard stream must be gapless");
        bytes.extend_from_slice(chunk);
    }
    let n = VALIDATED_BITS.min(bytes.len() * 8);
    let started = Instant::now();
    let stream = BitVec::from_bytes(&bytes, n);
    let results = run_all_tests(&stream);
    let alpha = Significance::PAPER;
    let passed = results.iter().filter(|r| r.passes(alpha)).count();
    println!(
        "  inline NIST SP 800-22 on shard 0's stream: {passed}/{} tests pass on the \
         first {:.1} Mb (alpha = {}, {:.0} ms)",
        results.len(),
        n as f64 / 1e6,
        alpha.0,
        started.elapsed().as_secs_f64() * 1e3,
    );
    for r in results.iter().filter(|r| !r.passes(alpha)) {
        println!("    FAILED {}: p = {}", r.name, r.display_p_value());
    }
    assert_eq!(passed, results.len(), "served bits must pass the battery");
}

/// Prints what the in-service validation loop observed during the burst
/// run: window verdicts, tap coverage, per-shard health, and the service's
/// queue-depth/latency histograms.
fn report_continuous_validation(stats: &ServiceStats) {
    let v = &stats.validation;
    println!(
        "  continuous validation: {} windows graded ({} failed), {} KiB tapped, {} KiB skipped",
        v.windows_validated,
        v.windows_failed,
        v.bytes_tapped >> 10,
        v.bytes_dropped >> 10,
    );
    for (shard, health) in stats.shard_health.iter().enumerate() {
        println!(
            "  shard {shard} health: {:?}, pass EWMA {:.3}, {} quarantines, {} readmissions",
            health.state, health.pass_ewma, health.quarantines, health.readmissions
        );
    }
    println!(
        "  latency p50 <= {} us, p99 <= {} us, max {} us; queue depth p99 <= {} requests",
        stats.latency_us.quantile_upper_bound(0.5),
        stats.latency_us.quantile_upper_bound(0.99),
        stats.latency_us.max(),
        stats.queue_depth.quantile_upper_bound(0.99),
    );
}

fn main() {
    // One-time characterisation of M1, shared by both shards (and cached in
    // .quac-cache/ across runs, like the figure binaries).
    let module = &PAPER_MODULES[0];
    let model = module.analog_model();
    let cfg = CharacterizationConfig::fast();
    let ch = CharacterizationCache::load_or_characterize_env(
        module.name,
        &model,
        DataPattern::best_average(),
        &cfg,
    );

    // The hardware-model peak: what a real channel would sustain (Figure 11).
    let hw_peak =
        ThroughputModel::new(module.geometry(), ch.best_segment_entropy)
            .scaled_throughput_gbps(TransferRate::ddr4_2400());
    println!("module {}: best segment entropy {:.0} bits", module.name, ch.best_segment_entropy);
    println!("hardware-model peak per channel (RC+BGP): {hw_peak:.2} Gb/s\n");

    // Burst capacity of the *simulation*: 4 clients, 2 shards, no pacing —
    // with the continuous-validation loop on: a validator thread grades
    // 50 kb windows of every shard's served bytes off the delivery path and
    // would quarantine a shard whose health crossed the failure bounds.
    let service_cfg = RngServiceConfig {
        max_inflight_bytes: 1 << 20,
        max_batch_bytes: 64 << 10,
        validation: ValidationConfig::enabled(),
        ..RngServiceConfig::default()
    };
    let service =
        Arc::new(RngService::start(QuacTrng::shards(&model, &ch, 2024, SHARDS), service_cfg));
    let (sim_peak, delivered_chunks) = drive_clients(&service);
    let stats = Arc::try_unwrap(service).expect("clients joined").shutdown();
    println!(
        "burst (no pacing): {CLIENTS} clients x {REQUESTS_PER_CLIENT} x {} KiB over {SHARDS} shards",
        REQUEST_BYTES >> 10
    );
    println!(
        "  delivered {sim_peak:.3} Gb/s (simulation); peak in-flight {} KiB of {} KiB budget",
        stats.peak_in_flight_bytes >> 10,
        service_cfg.max_inflight_bytes >> 10,
    );
    for (shard, bytes) in stats.per_shard_bytes.iter().enumerate() {
        println!("  shard {shard}: {} KiB delivered", bytes >> 10);
    }
    report_continuous_validation(&stats);
    validate_served_stream(&delivered_chunks);
    // `QUAC_METRICS=1` dumps the burst run's final snapshot in Prometheus
    // text exposition — what a scrape of the service would return
    // (`just metrics-demo`).
    if std::env::var_os("QUAC_METRICS").is_some_and(|v| v != "0") {
        println!("\n--- metrics export (Prometheus text) ---");
        print!("{}", quac_trng_repro::rng_service::export::prometheus_text(&stats));
        println!("--- end metrics export ---");
    }

    // Idle-cycle budgets under SPEC2006 traffic (Figure 12's model), then the
    // same budgets applied to the service — scaled into simulation time so
    // the pacing ratio matches what the hardware would see.
    let sys_cfg = MemorySystemConfig::paper_system();
    println!("\nworkload     idle%   hw TRNG Gb/s   paced sim Gb/s (predicted)");
    for w in SPEC2006_WORKLOADS.iter().filter(|w| ["mcf", "namd", "gcc"].contains(&w.name)) {
        let trace = TraceGenerator::new(w.clone(), sys_cfg.geom, 7).generate_for_cycles(300_000);
        let report = MemorySystem::new(sys_cfg).run_trace(&trace, 300_000);
        let hw_budget = idle_injection_throughput_gbps(&report, hw_peak, INJECTION_EFFICIENCY);
        // Scale the idle fraction onto the simulation's own peak rate.
        let sim_budget = report.idle_fraction() * sim_peak * INJECTION_EFFICIENCY;
        let paced_cfg = RngServiceConfig {
            // Per-shard budget: the service shares the channel budget evenly.
            pacing: IdleBudget::from_gbps(sim_budget / SHARDS as f64),
            ..service_cfg
        };
        let service =
            Arc::new(RngService::start(QuacTrng::shards(&model, &ch, 2024, SHARDS), paced_cfg));
        let (delivered, _) = drive_clients(&service);
        Arc::try_unwrap(service).expect("clients joined").shutdown();
        println!(
            "{:<12}{:>6.1}{:>13.2}{:>11.3} ({:.3})",
            w.name,
            report.idle_fraction() * 100.0,
            hw_budget,
            delivered,
            sim_budget,
        );
    }

    let costs = quac_trng_repro::trng::integration::integration_costs(&module.geometry());
    println!(
        "\nintegration cost: {} KiB of reserved DRAM, {} bits of controller state, {:.4} mm^2",
        costs.reserved_bytes / 1024,
        costs.controller_storage_bits,
        costs.controller_area_mm2
    );
}
