//! A processing-in-memory flavoured scenario from the paper's motivation:
//! a memory controller services random-number requests from applications
//! while regular memory traffic runs, stealing only idle DRAM cycles
//! (Sections 3, 7.3 and 9).
//!
//! Run with: `cargo run --release --example pim_rng_service`

use quac_trng_repro::dram_analog::profiles::average_of_max_segment_entropy;
use quac_trng_repro::dram_core::{DramGeometry, TransferRate};
use quac_trng_repro::memctrl::system::{idle_injection_throughput_gbps, MemorySystem, MemorySystemConfig};
use quac_trng_repro::trng::throughput::ThroughputModel;
use quac_trng_repro::workloads::{TraceGenerator, SPEC2006_WORKLOADS};

fn main() {
    let cfg = MemorySystemConfig::paper_system();
    let model = ThroughputModel::new(DramGeometry::ddr4_4gb_x8_module(), average_of_max_segment_entropy());
    let peak = model.scaled_throughput_gbps(TransferRate::ddr4_2400());
    println!("peak per-channel QUAC-TRNG rate (RC+BGP): {peak:.2} Gb/s");

    // A security service needs 2 Gb/s of true random numbers; check which
    // co-running workloads leave enough idle DRAM bandwidth on one channel.
    let demand_gbps = 2.0;
    println!("\nworkload     idle%   TRNG Gb/s   meets {demand_gbps} Gb/s demand?");
    for w in SPEC2006_WORKLOADS.iter().take(10) {
        let trace = TraceGenerator::new(w.clone(), cfg.geom, 7).generate_for_cycles(300_000);
        let report = MemorySystem::new(cfg).run_trace(&trace, 300_000);
        let tp = idle_injection_throughput_gbps(&report, peak, 0.95);
        println!(
            "{:<12}{:>6.1}{:>11.2}   {}",
            w.name,
            report.idle_fraction() * 100.0,
            tp,
            if tp >= demand_gbps { "yes" } else { "NO — queue requests in the output buffer" }
        );
    }

    let costs = quac_trng_repro::trng::integration::integration_costs(&DramGeometry::ddr4_8gb_x8_module());
    println!(
        "\nintegration cost: {} KiB of reserved DRAM, {} bits of controller state, {:.4} mm^2",
        costs.reserved_bytes / 1024,
        costs.controller_storage_bits,
        costs.controller_area_mm2
    );
}
