//! Characterise a simulated DDR4 module the way Section 6 of the paper does:
//! sweep the Figure 8 data patterns, map segment entropy across the bank, and
//! profile the best segment's cache blocks.
//!
//! Run with: `cargo run --release --example characterize_module`

use quac_trng_repro::dram_analog::{OperatingConditions, PAPER_MODULES};
use quac_trng_repro::dram_core::DataPattern;
use quac_trng_repro::trng::characterize::{characterize_module, pattern_sweep, CharacterizationConfig};

fn main() {
    let module = &PAPER_MODULES[0];
    let model = module.analog_model();
    let cfg = CharacterizationConfig {
        segment_stride: 256,
        bitline_stride: 32,
        conditions: OperatingConditions::nominal(),
    };

    println!("== data-pattern sweep (module {}) ==", module.name);
    for stats in pattern_sweep(&model, &DataPattern::figure8_patterns(), &cfg) {
        println!(
            "pattern {}: avg cache-block entropy {:6.2} bits, max {:6.2} bits",
            stats.pattern, stats.avg_cache_block_entropy, stats.max_cache_block_entropy
        );
    }

    println!("\n== segment map (pattern 0111) ==");
    let ch = characterize_module(&model, DataPattern::best_average(), &cfg);
    println!(
        "sampled {} segments: average {:.1} bits, best segment {} with {:.1} bits",
        ch.segment_entropy.len(),
        ch.average_segment_entropy(),
        ch.best_segment.index(),
        ch.best_segment_entropy
    );
    println!("paper (Table 3) reports avg {:.1} / max {:.1} bits for this module",
        module.table3_avg_segment_entropy, module.table3_max_segment_entropy);

    println!("\n== cache blocks of the best segment ==");
    for (i, e) in ch.best_segment_cache_blocks.iter().enumerate().step_by(16) {
        println!("cache block {i:>3}: {e:6.2} bits");
    }
    println!(
        "\n{} SHA-256 input blocks available per QUAC iteration; column ranges: {:?}",
        ch.sha_input_blocks(),
        ch.entropy_block_ranges()
    );
}
