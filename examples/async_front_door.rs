//! The async front door end to end: `await` tickets instead of blocking,
//! frame the bytes through the typed entropy contract, rate-limit a greedy
//! tenant with the token-bucket QoS, and read the per-shard entropy ledger
//! off the final stats snapshot.
//!
//! Run with: `cargo run --release --example async_front_door`

use quac_trng_repro::dram_analog::{ModuleVariation, OperatingConditions, QuacAnalogModel};
use quac_trng_repro::dram_core::{DataPattern, DramGeometry};
use quac_trng_repro::rng_service::facade::{block_on, AsyncTicket};
use quac_trng_repro::rng_service::{
    ClientId, Priority, RngService, RngServiceConfig, ServicePolicies, SubmitError, TokenBucketQos,
    Trng128, Trng32,
};
use quac_trng_repro::trng::characterize::{characterize_module, CharacterizationConfig};
use quac_trng_repro::trng::pipeline::QuacTrng;

fn main() {
    // A small simulated module keeps the example instant; the service API is
    // identical on the full paper modules.
    let geom = DramGeometry::tiny_test();
    let model = QuacAnalogModel::new(geom, ModuleVariation::generate(&geom, 21));
    let cfg = CharacterizationConfig {
        segment_stride: 1,
        bitline_stride: 1,
        conditions: OperatingConditions::nominal(),
    };
    let ch = characterize_module(&model, DataPattern::best_average(), &cfg);

    // Per-tenant QoS rides along as a policy: a 4 KiB burst per client,
    // refilled at 1 KiB/s.
    let service_cfg = RngServiceConfig::default();
    let mut policies = ServicePolicies::for_config(&service_cfg);
    policies.qos = Box::new(TokenBucketQos::new(1024.0, 4096));
    let service = RngService::start_with_policies(
        QuacTrng::shards(&model, &ch, 0xA5F0, 2),
        service_cfg,
        policies,
    );

    // Submit first, await later: the tickets resolve concurrently while this
    // thread is free to do other work. `block_on` is the shipped no-runtime
    // executor; any executor that drives a plain `Future` works the same.
    let tickets: Vec<AsyncTicket> = (0..3)
        .map(|i| {
            let ticket = service.submit(ClientId(i), Priority::Normal, 512).unwrap();
            AsyncTicket::from(ticket)
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let completion = block_on(ticket).expect("served");
        println!(
            "client {i}: {} bytes from shard {} ({} fresh bits banked)",
            completion.bytes.len(),
            completion.shard,
            completion.fresh_bits
        );
    }

    // The typed contract: frames carry their value, a SHA-256-derived
    // checksum, and source telemetry — and the constructor refuses any
    // completion whose attributed fresh bits sit below the frame's floor.
    let completion = block_on(AsyncTicket::from(
        service.submit(ClientId(0), Priority::Normal, 64).unwrap(),
    ))
    .expect("served");
    let t32 = Trng32::from_completion(&completion).expect("≥32 fresh bits");
    let t128 = Trng128::from_completion(&completion).expect("≥128 fresh bits");
    println!(
        "Trng32 frame: value {:#010x}, checksum {:02x?}, shard {} epoch {}",
        t32.value, t32.checksum, t32.telemetry.shard, t32.telemetry.epoch
    );
    println!("Trng128 frame: value {:02x?}", t128.value);

    // Drain one tenant's bucket: the rejection is typed and carries a
    // refill estimate, and no other tenant is touched.
    let greedy = ClientId(9);
    while let Ok(t) = service.submit(greedy, Priority::Normal, 2048) {
        block_on(AsyncTicket::from(t)).expect("within burst");
    }
    match service.submit(greedy, Priority::Normal, 2048) {
        Err(SubmitError::RateLimited {
            client,
            retry_after,
        }) => {
            // Whole seconds: the exact estimate shifts with wall-clock
            // elapsed time, and example stdout must stay run-to-run stable.
            println!(
                "client {} rate-limited, retry in ~{}s",
                client.0,
                retry_after.as_secs_f64().ceil()
            );
        }
        other => println!("unexpected: {other:?}"),
    }

    // The shutdown snapshot carries the per-shard entropy ledger: raw fresh
    // bits drawn from the array, the share attributed to served requests,
    // and the conditioned bytes that left the front door.
    let stats = service.shutdown();
    for (shard, ledger) in stats.per_shard_ledger.iter().enumerate() {
        println!(
            "shard {shard}: drew {} fresh bits, claimed {}, served {} conditioned bytes",
            ledger.fresh_bits_drawn, ledger.fresh_bits_claimed, ledger.conditioned_bytes_served
        );
        assert!(ledger.fresh_bits_claimed <= ledger.fresh_bits_drawn);
    }
    println!("rate-limited rejections: {}", stats.rate_limited_rejections);
}
